//! Skill modules of the simulated model, one per prompt shape.
//!
//! Each skill is a pure function of `(knowledge base, capability profile,
//! deterministic dice, parsed request)`. The capability profile gates
//! success probabilities; the knowledge base bounds what can be recalled;
//! the prompt content bounds what can be read. Nothing here consults ground
//! truth.

pub mod answer;
pub mod cloze_gen;
pub mod induce;
pub mod parsing;
pub mod retrieval;

use crate::protocol::ContextKind;
use crate::protocol::PromptForm;

/// Multiplier on context-reading fidelity for each context representation.
///
/// These three constants *are* the paper's context-data-parsing ablation:
/// natural text is easier for the model to use than bare `attr: value`
/// pairs, which are easier than raw dumps (§4.3).
pub fn context_kind_factor(kind: ContextKind) -> f64 {
    match kind {
        ContextKind::Natural => 1.0,
        ContextKind::Serialized => 0.93,
        ContextKind::Tabular => 0.85,
        ContextKind::Empty => 1.0,
    }
}

/// Multiplier on all capabilities for each prompt form.
///
/// Cloze questions (target prompt construction, §4.4) phrase the task the
/// way the model's training corpus does; direct concatenation does not.
pub fn prompt_form_factor(form: PromptForm) -> f64 {
    match form {
        PromptForm::Cloze => 1.0,
        PromptForm::FewShot => 0.90,
        PromptForm::Simple => 0.87,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn natural_beats_serialized_beats_tabular() {
        assert!(
            context_kind_factor(ContextKind::Natural)
                > context_kind_factor(ContextKind::Serialized)
        );
        assert!(
            context_kind_factor(ContextKind::Serialized)
                > context_kind_factor(ContextKind::Tabular)
        );
    }

    #[test]
    fn cloze_beats_simple() {
        assert!(prompt_form_factor(PromptForm::Cloze) > prompt_form_factor(PromptForm::Simple));
    }
}
