//! The final-answer skill: completing cloze questions (and their simple /
//! few-shot variants).
//!
//! The answering mechanism is the paper's thesis made executable. For every
//! task the model tries, in order:
//!
//! 1. **read the context** — facts present in the prompt, read correctly
//!    with a probability that depends on the context representation
//!    (natural text > serialized pairs > raw dumps) and the prompt form
//!    (cloze > few-shot > flat concatenation);
//! 2. **recall pretraining memory** — knowledge-base lookups, bounded by
//!    coverage;
//! 3. **reason** — multi-hop chains, analogies over shared street / area
//!    code / brand tokens, arithmetic — each hop gated by the reasoning
//!    capability;
//! 4. **guess** — fall back on the context mode or fail.
//!
//! Better context and better prompts mechanically raise the probability
//! that step 1 or 3 succeeds; that is where UniDM's gains come from.

use unidm_text::distance::{jaccard, jaro_winkler};
use unidm_world::Predicate;

use crate::kb::KnowledgeBase;
use crate::profile::LlmProfile;
use crate::protocol::{
    parse_natural_sentence, AnswerPayload, AnswerRequest, ContextKind, SerializedRecord,
};
use crate::skills::{context_kind_factor, prompt_form_factor};
use crate::Dice;

use super::induce;

/// One fact the model managed to read out of the prompt context.
#[derive(Debug, Clone, PartialEq)]
struct ContextFact {
    subject: String,
    attr: String,
    value: String,
}

/// Answers a parsed final-answer request.
pub fn answer(
    req: &AnswerRequest,
    profile: &LlmProfile,
    dice: &Dice,
    kb: &KnowledgeBase,
) -> String {
    let form = prompt_form_factor(req.form);
    let read_p = profile.context_fidelity * context_kind_factor(req.context_kind) * form;
    let reason_p = profile.effective_reasoning() * form;
    let facts = read_context(req, read_p, dice);
    match &req.payload {
        AnswerPayload::Imputation {
            subject,
            attr,
            record,
        } => impute(subject, attr, record, &facts, reason_p, profile, dice, kb),
        AnswerPayload::Transformation { examples, input } => {
            // Naturalized example lines are easier to induce from than raw
            // serialized pairs — the transformation side of the parsing
            // ablation (Table 10).
            transform(
                examples,
                input,
                reason_p * context_kind_factor(req.context_kind),
                dice,
                kb,
            )
        }
        AnswerPayload::ErrorDetection { attr, value } => {
            detect_error(attr, value, &facts, reason_p, profile, dice, kb)
        }
        AnswerPayload::EntityResolution { a, b } => {
            resolve_entities(a, b, req, reason_p, profile, dice, kb)
        }
        AnswerPayload::TableQa { question } => table_qa(question, &facts, reason_p, dice),
        AnswerPayload::Join {
            left_values,
            right_values,
            ..
        } => join_discovery(left_values, right_values, &facts, reason_p, dice, kb),
        AnswerPayload::Extraction { attr } => extract(attr, &req.context_lines, read_p, dice, kb),
    }
}

/// Reads facts out of the context lines, dropping each with the read
/// failure probability.
fn read_context(req: &AnswerRequest, read_p: f64, dice: &Dice) -> Vec<ContextFact> {
    let mut out = Vec::new();
    for (li, line) in req.context_lines.iter().enumerate() {
        let rec = match req.context_kind {
            ContextKind::Serialized => SerializedRecord::parse(line),
            _ => parse_natural_sentence(line).or_else(|| SerializedRecord::parse(line)),
        };
        let Some(rec) = rec else { continue };
        let subject = rec
            .get("@subject")
            .or_else(|| rec.subject())
            .unwrap_or("")
            .to_string();
        for (attr, value) in &rec.pairs {
            if attr == "@subject" || value.is_empty() {
                continue;
            }
            if dice.chance(&format!("{line}#{li}#{attr}"), "ctx-read", read_p) {
                out.push(ContextFact {
                    subject: subject.clone(),
                    attr: attr.to_lowercase(),
                    value: value.clone(),
                });
            }
        }
    }
    out
}

fn attr_matches(fact_attr: &str, target: &str) -> bool {
    let t = target.to_lowercase();
    fact_attr == t || fact_attr.contains(&t) || t.contains(fact_attr)
}

/// Knowledge-base predicates that answer "the {attr} of {subject}".
fn predicates_for_attr(attr: &str) -> Vec<Predicate> {
    let a = attr.to_lowercase();
    let mut out = Vec::new();
    if a.contains("timezone") {
        out.extend([Predicate::CityTimezone, Predicate::CountryTimezone]);
    }
    if a.contains("country") {
        out.push(Predicate::CityCountry);
    }
    if a.contains("city") {
        out.extend([
            Predicate::RestaurantCity,
            Predicate::HospitalCity,
            Predicate::AreaCodeCity,
        ]);
    }
    if a.contains("manufacturer") {
        out.extend([Predicate::ProductManufacturer, Predicate::BrandManufacturer]);
    }
    if a.contains("county") {
        out.push(Predicate::HospitalCounty);
    }
    if a.contains("artist") {
        out.push(Predicate::SongArtist);
    }
    if a.contains("genre") {
        out.push(Predicate::ArtistGenre);
    }
    if a.contains("brewery") {
        out.push(Predicate::BeerBrewery);
    }
    if a.contains("college") {
        out.push(Predicate::PlayerCollege);
    }
    if a.contains("height") {
        out.push(Predicate::PlayerHeight);
    }
    if a.contains("position") {
        out.push(Predicate::PlayerPosition);
    }
    if a.contains("postal") {
        out.push(Predicate::CityPostal);
    }
    if a.contains("iso") {
        out.push(Predicate::CountryIso);
    }
    if a.contains("continent") {
        out.push(Predicate::CountryContinent);
    }
    if a.contains("cuisine") || a.contains("type") {
        out.push(Predicate::RestaurantCuisine);
    }
    out
}

/// The street part of an address ("224 S. Beverly Dr." → "s. beverly dr.").
fn street_base(addr: &str) -> String {
    addr.split_whitespace()
        .skip_while(|w| w.chars().all(|c| c.is_ascii_digit()))
        .collect::<Vec<_>>()
        .join(" ")
        .to_lowercase()
}

/// The leading area code of a phone number ("310/859-8744" → "310").
fn area_code(phone: &str) -> Option<String> {
    let code: String = phone.chars().take_while(|c| c.is_ascii_digit()).collect();
    (code.len() >= 3).then_some(code)
}

#[allow(clippy::too_many_arguments)]
fn impute(
    subject: &str,
    attr: &str,
    record: &SerializedRecord,
    facts: &[ContextFact],
    reason_p: f64,
    profile: &LlmProfile,
    dice: &Dice,
    kb: &KnowledgeBase,
) -> String {
    let tag = format!("{subject}|{attr}");
    let a = attr.to_lowercase();

    // 1. Direct context hit: some read fact names this subject and attribute.
    //    (Reading was already gated per fact; no second gate.)
    if let Some(f) = facts
        .iter()
        .find(|f| attr_matches(&f.attr, attr) && f.subject.eq_ignore_ascii_case(subject))
    {
        return f.value.clone();
    }

    // 2. Record-internal evidence: a description mentioning "by {maker}".
    if a.contains("manufacturer") {
        if let Some(desc) = record.get("description") {
            if let Some((_, maker)) = desc.split_once(" by ") {
                if dice.chance(&tag, "desc-read", profile.context_fidelity) {
                    return maker.trim().to_string();
                }
            }
        }
    }

    // 3. Analogical reasoning over the context: one reasoning attempt that,
    //    when it succeeds, exploits whichever analogy the context supports
    //    (shared street, shared area code, shared brand, attribute chain).
    //    A single gate models "the model either makes the inference or
    //    doesn't" — repeated retries would overstate weak models.
    if dice.chance(&tag, "analogy", reason_p) {
        if a.contains("city") {
            if let Some(addr) = record.get("addr").or_else(|| record.get("address")) {
                let base = street_base(addr);
                if !base.is_empty() {
                    if let Some(f) = facts.iter().find(|f| {
                        attr_matches(&f.attr, "city")
                            && facts.iter().any(|g| {
                                g.subject == f.subject
                                    && attr_matches(&g.attr, "addr")
                                    && street_base(&g.value) == base
                            })
                    }) {
                        return f.value.clone();
                    }
                }
            }
            if let Some(phone) = record.get("phone") {
                if let Some(code) = area_code(phone) {
                    if let Some(f) = facts.iter().find(|f| {
                        attr_matches(&f.attr, "city")
                            && facts.iter().any(|g| {
                                g.subject == f.subject
                                    && attr_matches(&g.attr, "phone")
                                    && area_code(&g.value).as_deref() == Some(code.as_str())
                            })
                    }) {
                        return f.value.clone();
                    }
                }
            }
        }
        if a.contains("manufacturer") {
            let brand = subject.split_whitespace().next().unwrap_or("");
            if !brand.is_empty() {
                if let Some(f) = facts.iter().find(|f| {
                    attr_matches(&f.attr, "manufacturer")
                        && f.subject
                            .split_whitespace()
                            .next()
                            .is_some_and(|b| b.eq_ignore_ascii_case(brand))
                }) {
                    return f.value.clone();
                }
            }
        }
        if a.contains("timezone") {
            // Two-hop chain: subject → country → timezone, using context
            // records of analogous rows.
            let country = record
                .get("country")
                .map(str::to_string)
                .or_else(|| {
                    facts
                        .iter()
                        .find(|f| {
                            f.subject.eq_ignore_ascii_case(subject)
                                && attr_matches(&f.attr, "country")
                        })
                        .map(|f| f.value.clone())
                })
                .or_else(|| {
                    kb.lookup(subject, Predicate::CityCountry)
                        .map(str::to_string)
                });
            if let Some(country) = country {
                if let Some(f) = facts.iter().find(|f| {
                    attr_matches(&f.attr, "timezone")
                        && facts.iter().any(|g| {
                            g.subject == f.subject
                                && attr_matches(&g.attr, "country")
                                && g.value.eq_ignore_ascii_case(&country)
                        })
                }) {
                    return f.value.clone();
                }
                if let Some(tz) = kb.lookup(&country, Predicate::CountryTimezone) {
                    return tz.to_string();
                }
            }
        }
    }

    // 4. Pretraining recall: one recall attempt over whatever the model's
    //    memory holds about the subject or its identifying tokens.
    if dice.chance(&tag, "kb-recall", reason_p) {
        if let Some((_, v)) = kb.lookup_any(subject, &predicates_for_attr(attr)) {
            return v.to_string();
        }
        if a.contains("city") {
            if let Some(addr) = record.get("addr").or_else(|| record.get("address")) {
                let base = street_base(addr);
                if let Some(city) = kb.lookup(
                    &unidm_world::names::capitalize(&base),
                    Predicate::StreetCity,
                ) {
                    return city.to_string();
                }
            }
            if let Some(code) = record.get("phone").and_then(area_code) {
                if let Some(city) = kb.lookup(&code, Predicate::AreaCodeCity) {
                    return city.to_string();
                }
            }
        }
        if a.contains("manufacturer") {
            let brand = subject.split_whitespace().next().unwrap_or("");
            if let Some(m) = kb.lookup(brand, Predicate::BrandManufacturer) {
                return m.to_string();
            }
        }
    }

    // 5. Desperate guess: the most common context value for the attribute.
    // Ties break lexicographically, never by HashMap iteration order —
    // the same prompt must produce the same completion in every process
    // (prompt-cache snapshots replay completions across runs).
    let mut counts: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
    for f in facts.iter().filter(|f| attr_matches(&f.attr, attr)) {
        *counts.entry(f.value.as_str()).or_insert(0) += 1;
    }
    let mut counts: Vec<(&str, usize)> = counts.into_iter().collect();
    counts.sort_unstable();
    counts
        .into_iter()
        .max_by_key(|(v, c)| (*c, std::cmp::Reverse(v.len())))
        .map(|(v, _)| v.to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn transform(
    examples: &[(String, String)],
    input: &str,
    reason_p: f64,
    dice: &Dice,
    kb: &KnowledgeBase,
) -> String {
    let tag = format!("tf|{input}");
    // Induction is a reasoning act; a weak model garbles it.
    if !dice.chance(&tag, "tf-reason", reason_p) {
        return input.to_string();
    }
    match induce::induce(examples, kb).and_then(|p| p.apply(input, kb)) {
        Some(out) => out,
        None => input.to_string(),
    }
}

/// The attribute → valid-token-domain mapping the model uses when judging
/// values.
fn domain_for_attr(attr: &str) -> Option<&'static str> {
    let a = attr.to_lowercase();
    for (key, dom) in [
        ("city", "city"),
        ("county", "county"),
        ("country", "country"),
        ("measure", "measure code"),
        ("education", "education"),
        ("workclass", "workclass"),
        ("occupation", "occupation"),
        ("marital", "marital status"),
        ("relationship", "relationship"),
        ("race", "race"),
        ("sex", "sex"),
        ("income", "income"),
        ("position", "position"),
        ("college", "college"),
    ] {
        if a.contains(key) {
            return Some(dom);
        }
    }
    None
}

/// Plausible numeric ranges the model knows for common attributes.
fn plausible_range(attr: &str) -> Option<(f64, f64)> {
    let a = attr.to_lowercase();
    if a.contains("age") || a.contains("hours") {
        Some((0.0, 120.0))
    } else if a.contains("abv") {
        Some((0.0, 70.0))
    } else {
        None
    }
}

#[allow(clippy::too_many_arguments)]
fn detect_error(
    attr: &str,
    value: &str,
    facts: &[ContextFact],
    reason_p: f64,
    profile: &LlmProfile,
    dice: &Dice,
    kb: &KnowledgeBase,
) -> String {
    let tag = format!("ed|{attr}|{value}");
    let verdict_error = |is_err: bool| if is_err { "Yes" } else { "No" };

    // Numeric plausibility. A failed reasoning check defaults to "normal":
    // models under-report errors rather than hallucinate them.
    if let Ok(n) = value.trim().parse::<f64>() {
        if let Some((lo, hi)) = plausible_range(attr) {
            let out_of_range = n < lo || n > hi;
            if dice.chance(&tag, "ed-range", reason_p) {
                return verdict_error(out_of_range).to_string();
            }
            return "No".to_string();
        }
    }

    // Context vote: does the exact value occur among retrieved records?
    let in_context = facts
        .iter()
        .any(|f| attr_matches(&f.attr, attr) && f.value.eq_ignore_ascii_case(value));
    if in_context {
        // Seen in the column's distribution ⇒ almost surely valid.
        if dice.chance(&tag, "ed-ctx", profile.context_fidelity) {
            return "No".to_string();
        }
    }

    // Positive vocabulary evidence: a known valid token of the attribute's
    // domain is clean regardless of anything else.
    if let Some(domain) = domain_for_attr(attr) {
        if kb.knows_domain(domain)
            && kb.is_valid_token(domain, value)
            && dice.chance(&tag, "ed-domain", profile.effective_instruction())
        {
            return "No".to_string();
        }
    }

    // Word-level familiarity: a typo'd word is one the model has never seen
    // anywhere in pretraining; any unknown word inside an otherwise ordinary
    // value is suspicious. This token-recognition judgement is what lets a
    // plain few-shot prompt (FM) reach high error-detection F1 too.
    let familiarity = kb.token_familiarity(value);
    let suspicious = familiarity < 0.99;
    if dice.chance(&tag, "ed-famil", reason_p) {
        verdict_error(suspicious && !in_context).to_string()
    } else {
        "No".to_string()
    }
}

/// Alignment-aware textual similarity between two entity descriptions,
/// including initial-expansion ("P." matches "Punch").
fn entity_similarity(a: &str, b: &str) -> f64 {
    let ja = jaccard(a, b);
    let jw = jaro_winkler(&a.to_lowercase(), &b.to_lowercase());
    let mut sim = 0.6 * ja + 0.4 * jw;
    // Abbreviation expansion: leading initial matching the other's first word.
    let fa = a.split_whitespace().next().unwrap_or("");
    let fb = b.split_whitespace().next().unwrap_or("");
    let initial = |x: &str, y: &str| {
        x.len() <= 2
            && x.ends_with('.')
            && y.chars().next().is_some_and(|c| {
                x.chars()
                    .next()
                    .is_some_and(|xc| xc.eq_ignore_ascii_case(&c))
            })
    };
    if initial(fa, fb) || initial(fb, fa) {
        sim = (sim + 0.18).min(1.0);
    }
    // Shared rare alphanumeric model codes are strong evidence.
    let code = |s: &str| {
        s.split_whitespace()
            .map(|w| {
                w.trim_matches(|c: char| !c.is_alphanumeric())
                    .to_lowercase()
            })
            .filter(|w| {
                w.len() >= 4
                    && w.chars().any(|c| c.is_ascii_digit())
                    && w.chars().any(|c| c.is_alphabetic())
            })
            .collect::<std::collections::BTreeSet<_>>()
    };
    let ca = code(a);
    let cb = code(b);
    if !ca.is_empty() && !cb.is_empty() {
        if ca.intersection(&cb).next().is_some() {
            sim = (sim + 0.25).min(1.0);
        } else {
            sim = (sim - 0.2).max(0.0);
        }
    }
    sim
}

/// Agreement of two field values in `[0, 1]`: relative closeness for
/// numbers, graded string similarity otherwise.
fn value_agreement(x: &str, y: &str) -> f64 {
    let num = |s: &str| -> Option<f64> {
        let cleaned: String = s
            .chars()
            .filter(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        cleaned.parse().ok()
    };
    if let (Some(a), Some(b)) = (num(x), num(y)) {
        if x.chars().any(|c| c.is_ascii_digit()) && y.chars().any(|c| c.is_ascii_digit()) {
            let denom = a.abs().max(b.abs()).max(1e-9);
            // Numbers that disagree are weak evidence against a match —
            // prices and durations drift across catalogues.
            return if (a - b).abs() / denom < 0.15 {
                1.0
            } else {
                0.25
            };
        }
    }
    let xl = x.to_lowercase();
    let yl = y.to_lowercase();
    if xl == yl {
        return 1.0;
    }
    0.5 * jaro_winkler(&xl, &yl) + 0.5 * jaccard(&xl, &yl)
}

/// Field-wise agreement of two entity descriptions, when both parse into at
/// least two shared fields. This is the "compare attribute by attribute"
/// reading a capable model applies to structured entity descriptions.
fn field_agreement(a: &str, b: &str) -> Option<f64> {
    let parse = |s: &str| {
        SerializedRecord::parse(s)
            .filter(|r| r.pairs.len() >= 2)
            .or_else(|| parse_natural_sentence(s))
    };
    let ra = parse(a)?;
    let rb = parse(b)?;
    let mut shared = 0usize;
    let mut agree = 0.0;
    let mut strong_disagreements = 0u32;
    for (attr, va) in &ra.pairs {
        if va.is_empty() {
            continue;
        }
        let key = if attr == "@subject" {
            "@subject"
        } else {
            attr.as_str()
        };
        let Some(vb) = rb
            .get(key)
            .or_else(|| (key == "@subject").then(|| rb.get("@subject")).flatten())
        else {
            continue;
        };
        shared += 1;
        let va_num = va.chars().any(|c| c.is_ascii_digit());
        let agreement = value_agreement(va, vb);
        // A flatly different textual field (another brewery, another
        // artist) is near-conclusive evidence of distinct entities.
        if agreement < 0.3 && !va_num {
            strong_disagreements += 1;
        }
        agree += agreement;
    }
    (shared >= 2).then(|| (agree / shared as f64) * 0.55f64.powi(strong_disagreements as i32))
}

#[allow(clippy::too_many_arguments)]
fn resolve_entities(
    a: &str,
    b: &str,
    req: &AnswerRequest,
    _reason_p: f64,
    profile: &LlmProfile,
    dice: &Dice,
    kb: &KnowledgeBase,
) -> String {
    // A model with a mis-calibrated yes/no boundary rambles or refuses; the
    // caller reads anything that is not "Yes" as a non-match. This is what
    // collapses raw GPT-J-6B (and zero-shot LLaMA2-7B) in Table 5, and what
    // fine-tuning repairs.
    if !dice.chance(
        &format!("{a}||{b}"),
        "er-follow",
        profile.effective_calibration(),
    ) {
        return "No".to_string();
    }
    let text_sim = entity_similarity(a, b);
    // Field-by-field comparison dominates when the descriptions expose
    // structure — raw text similarity over naturalized sentences is
    // inflated by the shared template words ("is brewed by", "is of
    // style"), which a model comparing *entities* discounts.
    let sim = match field_agreement(a, b) {
        Some(fa) => 0.2 * text_sim + 0.8 * fa,
        None => text_sim,
    };
    // Cloze phrasing and naturalized entity descriptions sharpen the
    // judgement relative to flat few-shot serialization — UniDM's edge
    // over FM on entity resolution.
    let form = crate::skills::prompt_form_factor(req.form);
    let form_quality = form * form * crate::skills::context_kind_factor(req.context_kind).max(0.9);
    let sigma_scale = 1.0 / form_quality.max(0.5);
    // Domain-specific jargon the model has never seen makes its judgement
    // noisier (the paper's Amazon-Google explanation).
    let familiarity = kb.token_familiarity(&format!("{a} {b}"));
    let base_noise = 1.0 - profile.effective_calibration();
    let mut sigma = 0.10 + 0.45 * base_noise + 0.25 * (1.0 - familiarity);
    // In-context demonstrations calibrate the decision boundary — the more
    // similar they are to the query pair, the better the calibration. This
    // is why FM (manual) beats FM (random) in Table 4.
    if !req.context_lines.is_empty() {
        let relevance = req
            .context_lines
            .iter()
            .map(|l| jaccard(l, &format!("{a} {b}")))
            .fold(0.0f64, f64::max);
        sigma *= 0.85 - 0.45 * relevance.min(1.0);
    }
    // Fine-tuning sharpens it further.
    sigma *= 1.0 - 0.75 * profile.domain_adaptation;
    let noise = sigma * sigma_scale * (dice.uniform(&format!("{a}||{b}"), "er-noise") - 0.5) * 2.0;
    let threshold = 0.47;
    let same = sim + noise > threshold;
    if same {
        "Yes".to_string()
    } else {
        "No".to_string()
    }
}

fn table_qa(question: &str, facts: &[ContextFact], reason_p: f64, dice: &Dice) -> String {
    let tag = format!("qa|{question}");
    let q = question.to_lowercase();
    // Aggregate questions: "how many {key} ... total?" — the word after
    // "many" names the quantity column.
    if q.starts_with("how many") {
        let words: Vec<&str> = q.split_whitespace().collect();
        let key = words
            .iter()
            .position(|w| *w == "many")
            .and_then(|i| words.get(i + 1))
            .copied()
            .unwrap_or("");
        let mut total = 0f64;
        let mut matched = 0usize;
        for f in facts {
            if !key.is_empty()
                && q.contains(&f.subject.to_lowercase())
                && f.attr.to_lowercase().contains(key)
            {
                if let Ok(n) = f.value.trim().parse::<f64>() {
                    total += n;
                    matched += 1;
                }
            }
        }
        if matched > 0 && dice.chance(&tag, "qa-sum", reason_p) {
            return if total.fract() == 0.0 {
                format!("{}", total as i64)
            } else {
                format!("{total}")
            };
        }
    }
    // Lookup questions: return the value whose subject appears in the question.
    if let Some(f) = facts.iter().find(|f| q.contains(&f.subject.to_lowercase())) {
        if dice.chance(&tag, "qa-lookup", reason_p) {
            return f.value.clone();
        }
    }
    "unknown".to_string()
}

fn join_discovery(
    left_values: &[String],
    right_values: &[String],
    _facts: &[ContextFact],
    reason_p: f64,
    dice: &Dice,
    kb: &KnowledgeBase,
) -> String {
    let canon = |v: &String| v.trim().to_lowercase();
    let left: std::collections::BTreeSet<String> = left_values.iter().map(canon).collect();
    let right: std::collections::BTreeSet<String> = right_values.iter().map(canon).collect();
    if left.is_empty() || right.is_empty() {
        return "No (joinability: 5%)".to_string();
    }
    let direct = left.intersection(&right).count();
    // Semantic containment: left values mapping onto right values through a
    // known relation (country ↔ ISO code and friends).
    let rels = [
        Predicate::CountryIso,
        Predicate::CityCountry,
        Predicate::CountryContinent,
        Predicate::BrandManufacturer,
    ];
    let semantic = left
        .iter()
        .filter(|v| {
            rels.iter().any(|&p| {
                kb.lookup(v, p)
                    .map(str::to_lowercase)
                    .is_some_and(|o| right.contains(&o))
                    || kb
                        .lookup_reverse(v, p)
                        .map(str::to_lowercase)
                        .is_some_and(|o| right.contains(&o))
            })
        })
        .count();
    let containment = (direct.max(semantic)) as f64 / left.len().min(right.len()) as f64;
    // Verbalized confidence follows the usual LLM calibration curve: the
    // model rounds decisive evidence up ("16 of 20 samples match — clearly
    // joinable") and weak evidence down. A logistic link captures that.
    let confidence = 1.0 / (1.0 + (-12.0 * (containment - 0.45)).exp());
    // Reasoning noise perturbs the judged containment slightly.
    let noise =
        (1.0 - reason_p) * 0.4 * (dice.uniform(&format!("{left:?}|{right:?}"), "join") - 0.5);
    let score = (confidence + noise).clamp(0.0, 1.0);
    let verdict = if score >= 0.5 { "Yes" } else { "No" };
    format!("{verdict} (joinability: {:.0}%)", score * 100.0)
}

fn extract(
    attr: &str,
    context_lines: &[String],
    read_p: f64,
    dice: &Dice,
    kb: &KnowledgeBase,
) -> String {
    let text = context_lines.join(" ");
    let tag = format!("ex|{attr}|{}", text.len());
    if !dice.chance(&tag, "ex-read", read_p) {
        return "unknown".to_string();
    }
    let a = attr.to_lowercase();
    if a == "height" {
        // Pattern: "<d> ft <d> in".
        let words: Vec<&str> = text.split_whitespace().collect();
        for w in words.windows(4) {
            if w[1] == "ft" && w[3].starts_with("in") && w[0].parse::<u8>().is_ok() {
                return format!("{} ft {} in", w[0], w[2]);
            }
        }
        return "unknown".to_string();
    }
    if a == "position" || a == "college" {
        // Longest known vocabulary token appearing in the text.
        let domain = if a == "position" {
            "position"
        } else {
            "college"
        };
        let mut best: Option<String> = None;
        for candidate in candidate_spans(&text) {
            if kb.is_valid_token(domain, &candidate)
                && best.as_ref().is_none_or(|b| candidate.len() > b.len())
            {
                best = Some(candidate);
            }
        }
        if let Some(b) = best {
            return b;
        }
        if a == "college" && text.contains("NA") {
            return "NA".to_string();
        }
        return "unknown".to_string();
    }
    if a == "player" || a == "name" {
        // The page title / heading: first capitalized bigram.
        for w in text.split_whitespace().collect::<Vec<_>>().windows(2) {
            let first_ok = w[0].chars().next().is_some_and(|c| c.is_uppercase())
                && w[0].chars().all(|c| c.is_alphabetic());
            let second_ok = w[1].chars().next().is_some_and(|c| c.is_uppercase())
                && w[1].chars().all(|c| c.is_alphabetic());
            if first_ok && second_ok {
                return format!("{} {}", w[0], w[1]);
            }
        }
        return "unknown".to_string();
    }
    "unknown".to_string()
}

/// Word spans of length 1–4 from the text, for vocabulary matching.
fn candidate_spans(text: &str) -> Vec<String> {
    let words: Vec<String> = text
        .split_whitespace()
        .map(|w| {
            w.trim_matches(|c: char| !c.is_alphanumeric() && c != '/')
                .to_string()
        })
        .filter(|w| !w.is_empty())
        .collect();
    let mut out = Vec::new();
    for len in 1..=4usize {
        for win in words.windows(len) {
            out.push(win.join(" "));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{AnswerRequest, ContextKind, PromptForm};
    use unidm_world::World;

    fn kb() -> KnowledgeBase {
        KnowledgeBase::from_world(&World::generate(7), 1.0, 1)
    }

    fn imputation_req(ctx: Vec<String>, kind: ContextKind) -> AnswerRequest {
        AnswerRequest {
            task: crate::protocol::TaskKind::Imputation,
            form: PromptForm::Cloze,
            context_kind: kind,
            context_lines: ctx,
            payload: AnswerPayload::Imputation {
                subject: "Copenhagen".into(),
                attr: "timezone".into(),
                record: SerializedRecord::new(vec![
                    ("city".into(), "Copenhagen".into()),
                    ("country".into(), "Denmark".into()),
                ]),
            },
        }
    }

    #[test]
    fn imputes_timezone_via_context_chain() {
        let req = imputation_req(
            vec![
                "Alicante belongs to the country Spain and is in the timezone Central European Time."
                    .into(),
            ],
            ContextKind::Natural,
        );
        // Even with an empty KB the chain Denmark→CET cannot complete from
        // context (context says Spain→CET); but the KB chain can.
        let out = answer(&req, &LlmProfile::gpt4_turbo(), &Dice::new(1), &kb());
        assert_eq!(out, "Central European Time");
    }

    #[test]
    fn imputes_from_direct_context_fact() {
        let req = imputation_req(
            vec!["Copenhagen is in the timezone Central European Time.".into()],
            ContextKind::Natural,
        );
        let out = answer(
            &req,
            &LlmProfile::gpt4_turbo(),
            &Dice::new(1),
            &KnowledgeBase::empty(),
        );
        assert_eq!(out, "Central European Time");
    }

    #[test]
    fn empty_kb_and_context_fails() {
        let req = imputation_req(vec![], ContextKind::Empty);
        let out = answer(
            &req,
            &LlmProfile::gpt4_turbo(),
            &Dice::new(1),
            &KnowledgeBase::empty(),
        );
        assert_eq!(out, "unknown");
    }

    #[test]
    fn street_analogy_resolves_city() {
        let req = AnswerRequest {
            task: crate::protocol::TaskKind::Imputation,
            form: PromptForm::Cloze,
            context_kind: ContextKind::Natural,
            context_lines: vec![
                "Belvedere is located at 9882 Little Santa Monica Blvd and is located in the \
                 city of Beverly Hills."
                    .into(),
            ],
            payload: AnswerPayload::Imputation {
                subject: "Ruth's Chris Steak House".into(),
                attr: "city".into(),
                record: SerializedRecord::new(vec![
                    ("name".into(), "Ruth's Chris Steak House".into()),
                    ("addr".into(), "224 Little Santa Monica Blvd".into()),
                ]),
            },
        };
        let out = answer(
            &req,
            &LlmProfile::gpt4_turbo(),
            &Dice::new(1),
            &KnowledgeBase::empty(),
        );
        assert_eq!(out, "Beverly Hills");
    }

    #[test]
    fn transformation_by_example() {
        let req = AnswerRequest {
            task: crate::protocol::TaskKind::Transformation,
            form: PromptForm::Cloze,
            context_kind: ContextKind::Natural,
            context_lines: vec![],
            payload: AnswerPayload::Transformation {
                examples: vec![
                    ("20000101".into(), "2000-01-01".into()),
                    ("19991231".into(), "1999-12-31".into()),
                ],
                input: "20210315".into(),
            },
        };
        // The reasoning gate is stochastic per seed; a strong model should
        // succeed on the large majority of seeds.
        let kb = kb();
        let ok = (0..20)
            .filter(|&s| {
                answer(&req, &LlmProfile::gpt4_turbo(), &Dice::new(s), &kb) == "2021-03-15"
            })
            .count();
        assert!(ok >= 16, "success on {ok}/20 seeds");
    }

    #[test]
    fn error_detection_typo_flagged() {
        let req = AnswerRequest {
            task: crate::protocol::TaskKind::ErrorDetection,
            form: PromptForm::Cloze,
            context_kind: ContextKind::Empty,
            context_lines: vec![],
            payload: AnswerPayload::ErrorDetection {
                attr: "city".into(),
                value: "Copxnhagen".into(),
            },
        };
        let out = answer(&req, &LlmProfile::gpt4_turbo(), &Dice::new(1), &kb());
        assert_eq!(out, "Yes");
    }

    #[test]
    fn error_detection_valid_value_passes() {
        let req = AnswerRequest {
            task: crate::protocol::TaskKind::ErrorDetection,
            form: PromptForm::Cloze,
            context_kind: ContextKind::Empty,
            context_lines: vec![],
            payload: AnswerPayload::ErrorDetection {
                attr: "city".into(),
                value: "Copenhagen".into(),
            },
        };
        let out = answer(&req, &LlmProfile::gpt4_turbo(), &Dice::new(1), &kb());
        assert_eq!(out, "No");
    }

    #[test]
    fn error_detection_numeric_outlier() {
        let req = AnswerRequest {
            task: crate::protocol::TaskKind::ErrorDetection,
            form: PromptForm::Cloze,
            context_kind: ContextKind::Empty,
            context_lines: vec![],
            payload: AnswerPayload::ErrorDetection {
                attr: "age".into(),
                value: "382".into(),
            },
        };
        let out = answer(&req, &LlmProfile::gpt4_turbo(), &Dice::new(1), &kb());
        assert_eq!(out, "Yes");
    }

    #[test]
    fn er_same_entity_yes() {
        let req = AnswerRequest {
            task: crate::protocol::TaskKind::EntityResolution,
            form: PromptForm::Cloze,
            context_kind: ContextKind::Empty,
            context_lines: vec![],
            payload: AnswerPayload::EntityResolution {
                a: "Kelvar Studio Pro KX-4510 is priced at $199.99".into(),
                b: "Kelvar Studio Pro KX-4510 is priced at $201.50".into(),
            },
        };
        let out = answer(&req, &LlmProfile::gpt4_turbo(), &Dice::new(1), &kb());
        assert_eq!(out, "Yes");
    }

    #[test]
    fn er_different_entity_no() {
        let req = AnswerRequest {
            task: crate::protocol::TaskKind::EntityResolution,
            form: PromptForm::Cloze,
            context_kind: ContextKind::Empty,
            context_lines: vec![],
            payload: AnswerPayload::EntityResolution {
                a: "Kelvar Studio Pro KX-4510".into(),
                b: "Tornet Office Max TZ-9981".into(),
            },
        };
        let out = answer(&req, &LlmProfile::gpt4_turbo(), &Dice::new(1), &kb());
        assert_eq!(out, "No");
    }

    #[test]
    fn tableqa_sums_medals() {
        let req = AnswerRequest {
            task: crate::protocol::TaskKind::TableQa,
            form: PromptForm::Cloze,
            context_kind: ContextKind::Natural,
            context_lines: vec![
                "Australia won gold medals numbering 2.".into(),
                "Switzerland won gold medals numbering 0.".into(),
            ],
            payload: AnswerPayload::TableQa {
                question: "how many gold medals did Australia and Switzerland total?".into(),
            },
        };
        let out = answer(&req, &LlmProfile::gpt4_turbo(), &Dice::new(1), &kb());
        assert_eq!(out, "2");
    }

    #[test]
    fn join_direct_overlap_yes() {
        let req = AnswerRequest {
            task: crate::protocol::TaskKind::JoinDiscovery,
            form: PromptForm::Cloze,
            context_kind: ContextKind::Empty,
            context_lines: vec![],
            payload: AnswerPayload::Join {
                left: "a.x".into(),
                right: "b.x".into(),
                left_values: vec!["GER".into(), "ITA".into(), "FRA".into()],
                right_values: vec!["ita".into(), "ger".into(), "fra".into(), "esp".into()],
            },
        };
        let out = answer(&req, &LlmProfile::gpt4_turbo(), &Dice::new(1), &kb());
        assert!(out.starts_with("Yes"), "{out}");
    }

    #[test]
    fn join_semantic_abbreviation_yes() {
        let req = AnswerRequest {
            task: crate::protocol::TaskKind::JoinDiscovery,
            form: PromptForm::Cloze,
            context_kind: ContextKind::Empty,
            context_lines: vec![],
            payload: AnswerPayload::Join {
                left: "fifa.country_full".into(),
                right: "geo.ISO".into(),
                left_values: vec!["Germany".into(), "Italy".into(), "France".into()],
                right_values: vec!["GER".into(), "ITA".into(), "FRA".into()],
            },
        };
        let out = answer(&req, &LlmProfile::gpt4_turbo(), &Dice::new(1), &kb());
        assert!(out.starts_with("Yes"), "{out}");
    }

    #[test]
    fn join_disjoint_no() {
        let req = AnswerRequest {
            task: crate::protocol::TaskKind::JoinDiscovery,
            form: PromptForm::Cloze,
            context_kind: ContextKind::Empty,
            context_lines: vec![],
            payload: AnswerPayload::Join {
                left: "a.x".into(),
                right: "b.y".into(),
                left_values: vec!["alpha".into(), "beta".into()],
                right_values: vec!["gamma".into(), "delta".into()],
            },
        };
        let out = answer(&req, &LlmProfile::gpt4_turbo(), &Dice::new(1), &kb());
        assert!(out.starts_with("No"), "{out}");
    }

    #[test]
    fn extraction_height_and_position() {
        let kb = kb();
        let lines = vec![
            "Kevin Durant is an American professional basketball player standing 6 ft 10 in \
             tall, he plays the Small forward position at Texas."
                .to_string(),
        ];
        let req = AnswerRequest {
            task: crate::protocol::TaskKind::Extraction,
            form: PromptForm::Cloze,
            context_kind: ContextKind::Tabular,
            context_lines: lines.clone(),
            payload: AnswerPayload::Extraction {
                attr: "height".into(),
            },
        };
        // The read gate is stochastic per seed; count successes.
        let heights = (0..20)
            .filter(|&s| {
                answer(&req, &LlmProfile::gpt4_turbo(), &Dice::new(s), &kb) == "6 ft 10 in"
            })
            .count();
        assert!(heights >= 14, "height read on {heights}/20 seeds");
        let req = AnswerRequest {
            payload: AnswerPayload::Extraction {
                attr: "position".into(),
            },
            ..req
        };
        let positions = (0..20)
            .filter(|&s| {
                answer(&req, &LlmProfile::gpt4_turbo(), &Dice::new(s), &kb) == "Small forward"
            })
            .count();
        assert!(positions >= 14, "position read on {positions}/20 seeds");
    }
}
