//! Retrieval skills: answering `p_rm` (attribute selection) and `p_ri`
//! (instance relevance scoring).

use unidm_text::distance::jaccard;
use unidm_text::Embedder;

use crate::kb::KnowledgeBase;
use crate::profile::LlmProfile;
use crate::protocol::{PriRequest, PrmRequest, TaskKind};
use crate::Dice;

/// Attribute pairs a pretrained model "knows" to be semantically linked —
/// the internal knowledge `p_rm` elicits (target keyword, helpful keyword,
/// strength).
const ATTRIBUTE_AFFINITY: &[(&str, &str, f64)] = &[
    ("timezone", "country", 1.0),
    ("timezone", "city", 0.9),
    ("country", "city", 1.0),
    ("country", "iso", 0.9),
    ("country", "postal", 0.5),
    ("city", "addr", 0.95),
    ("city", "phone", 0.85),
    ("city", "county", 0.6),
    ("city", "zip", 0.7),
    ("city", "state", 0.55),
    ("manufacturer", "name", 1.0),
    ("manufacturer", "description", 0.9),
    ("manufacturer", "brand", 0.95),
    ("artist", "song", 0.9),
    ("artist", "album", 0.85),
    ("artist", "genre", 0.7),
    ("brewery", "name", 0.9),
    ("college", "player", 0.9),
    ("population", "city", 0.6),
    ("income", "education", 0.7),
    ("income", "occupation", 0.6),
    ("nation", "gold", 0.8),
    ("gold", "nation", 0.9),
    ("silver", "nation", 0.9),
    ("bronze", "nation", 0.9),
];

/// How strongly a pretrained model links `candidate` to `target`.
fn affinity(target: &str, candidate: &str) -> f64 {
    let t = target.to_lowercase();
    let c = candidate.to_lowercase();
    let table_hit = ATTRIBUTE_AFFINITY
        .iter()
        .filter(|(a, b, _)| t.contains(a) && c.contains(b))
        .map(|(_, _, s)| *s)
        .fold(0.0, f64::max);
    // An attribute literally named in the query (e.g. "gold" in "how many
    // gold medals…") is evidently relevant.
    let named = t
        .split(|ch: char| !ch.is_alphanumeric())
        .any(|w| !w.is_empty() && w == c);
    if named {
        table_hit.max(0.95)
    } else {
        table_hit
    }
}

/// Answers `p_rm`: ranks candidate attributes by semantic affinity with the
/// target, with capability noise, and returns the best ones (comma list).
pub fn select_attributes(
    req: &PrmRequest,
    profile: &LlmProfile,
    dice: &Dice,
    _kb: &KnowledgeBase,
) -> String {
    // The target attribute is the last comma-element of the query
    // ("Copenhagen, timezone" → "timezone").
    let target = req
        .query
        .rsplit(',')
        .next()
        .unwrap_or(&req.query)
        .trim()
        .to_string();
    let embedder = Embedder::default();
    let target_emb = embedder.embed(&target);
    let mut scored: Vec<(f64, &String)> = req
        .candidates
        .iter()
        .map(|c| {
            let known = affinity(&target, c);
            // Fall back on name similarity when no explicit link is known.
            let fallback = 0.3 * f64::from(target_emb.cosine(&embedder.embed(c)));
            let mut score = known.max(fallback);
            // Capability noise: weaker models mis-rank attributes.
            let noise_span = 1.0 - profile.effective_instruction();
            score += noise_span * (dice.uniform(&format!("{}|{c}", req.query), "prm-noise") - 0.5);
            (score, c)
        })
        .collect();
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    // Emit every clearly helpful attribute (capped at three); always at
    // least the top one. The paper's imputation default ends up with one
    // attribute, its TableQA example with two ("Nation" and "Gold").
    let mut picked: Vec<&str> = Vec::new();
    for (score, attr) in &scored {
        if picked.is_empty() || (*score >= 0.6 && picked.len() < 3) {
            picked.push(attr);
        }
    }
    picked.join(", ")
}

/// Answers `p_ri`: scores each instance 0–3 for relevance to the query.
///
/// Relevance is lexical-semantic similarity between the instance and the
/// query — what an LLM actually computes when asked this — with per-instance
/// capability noise.
pub fn score_instances(
    req: &PriRequest,
    profile: &LlmProfile,
    dice: &Dice,
    kb: &KnowledgeBase,
) -> String {
    // The attribute the query marks as missing ("city: ?"): an instance
    // that lacks it cannot demonstrate anything, however similar it looks.
    let missing_attr: Option<String> = crate::protocol::SerializedRecord::parse(&req.query)
        .and_then(|r| {
            r.pairs
                .iter()
                .find(|(_, v)| v == "?")
                .map(|(a, _)| a.clone())
        });
    let mut sims: Vec<f64> = Vec::with_capacity(req.instances.len());
    for inst in &req.instances {
        let text = inst.render();
        let mut sim = jaccard(&req.query, &text);
        // Semantic bonus: instances sharing a KB-linked value with the query
        // (e.g. same street, same brand) are more relevant than raw token
        // overlap suggests.
        if shares_linked_value(&req.query, inst, kb, req.task) {
            sim = (sim + 0.6).min(1.0);
        }
        if let Some(attr) = &missing_attr {
            if inst.get(attr).is_none() {
                sim *= 0.15;
            }
        }
        sims.push(sim);
    }
    // Relevance is judged relative to the best candidate, like a model
    // ranking instances against each other rather than on an absolute scale.
    let max_sim = sims.iter().copied().fold(0.0f64, f64::max).max(1e-9);
    let mut out: Vec<String> = Vec::with_capacity(req.instances.len());
    for (i, (inst, sim)) in req.instances.iter().zip(&sims).enumerate() {
        let rel = sim / max_sim;
        let noise_span = (1.0 - profile.effective_instruction()) * 1.5;
        let noisy =
            rel + noise_span * (dice.uniform(&format!("{}#{i}", inst.render()), "pri-noise") - 0.5);
        let score = (noisy * 3.4).floor().clamp(0.0, 3.0) as u8;
        out.push(format!("{}:{}", i + 1, score));
    }
    out.join(", ")
}

/// True when the instance and the query share a discriminative linked value
/// — same street, same phone area code, same leading brand token, or (for
/// error detection) the same exact attribute value. Venue-type words like
/// "Cafe" are deliberately not enough: relevance is judged per attribute,
/// the way a model reading both records attribute-by-attribute would.
fn shares_linked_value(
    query: &str,
    inst: &crate::protocol::SerializedRecord,
    _kb: &KnowledgeBase,
    task: TaskKind,
) -> bool {
    if task != TaskKind::Imputation && task != TaskKind::ErrorDetection {
        return false;
    }
    let Some(query_rec) = crate::protocol::SerializedRecord::parse(query) else {
        return false;
    };
    for (attr, qv) in &query_rec.pairs {
        if qv.is_empty() || qv == "?" {
            continue;
        }
        let Some(iv) = inst.get(attr) else { continue };
        let a = attr.to_lowercase();
        let matched = if a.contains("addr") || a.contains("address") {
            let base = street_base(qv);
            !base.is_empty() && street_base(iv) == base
        } else if a.contains("phone") {
            area_code(qv).is_some() && area_code(qv) == area_code(iv)
        } else if a.contains("name") || a.contains("title") {
            // Shared leading brand/venue token, if it is not the last word
            // (avoids matching on generic suffixes).
            let qb = qv.split_whitespace().next().unwrap_or("");
            let ib = iv.split_whitespace().next().unwrap_or("");
            qb.len() >= 3 && qb.eq_ignore_ascii_case(ib)
        } else {
            false
        };
        if matched {
            return true;
        }
    }
    false
}

/// The street part of an address ("224 S. Beverly Dr." → "s. beverly dr.").
fn street_base(addr: &str) -> String {
    addr.split_whitespace()
        .skip_while(|w| w.chars().all(|c| c.is_ascii_digit()))
        .collect::<Vec<_>>()
        .join(" ")
        .to_lowercase()
}

/// The leading area code of a phone number ("310/859-8744" → "310").
fn area_code(phone: &str) -> Option<String> {
    let code: String = phone.chars().take_while(|c| c.is_ascii_digit()).collect();
    (code.len() >= 3).then_some(code)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::SerializedRecord;
    use unidm_world::World;

    fn setup() -> (LlmProfile, Dice, KnowledgeBase) {
        let world = World::generate(7);
        (
            LlmProfile::gpt3_175b(),
            Dice::new(1),
            KnowledgeBase::from_world(&world, 0.9, 1),
        )
    }

    #[test]
    fn affinity_country_for_timezone() {
        assert!(affinity("timezone", "country") > affinity("timezone", "population"));
    }

    #[test]
    fn selects_country_for_timezone_imputation() {
        let (p, d, kb) = setup();
        let req = PrmRequest {
            task: TaskKind::Imputation,
            query: "Copenhagen, timezone".into(),
            candidates: vec!["country".into(), "population".into(), "postalcode".into()],
        };
        let out = select_attributes(&req, &p, &d, &kb);
        assert!(out.contains("country"), "got {out}");
    }

    #[test]
    fn weak_model_noisier_selection() {
        let (_, d, kb) = setup();
        let strong = LlmProfile::gpt4_turbo();
        let weak = LlmProfile::gptj_6b();
        let mut strong_hits = 0;
        let mut weak_hits = 0;
        for i in 0..60 {
            let req = PrmRequest {
                task: TaskKind::Imputation,
                query: format!("City{i}, timezone"),
                candidates: vec!["country".into(), "population".into(), "phone".into()],
            };
            if select_attributes(&req, &strong, &d, &kb).contains("country") {
                strong_hits += 1;
            }
            if select_attributes(&req, &weak, &d, &kb).contains("country") {
                weak_hits += 1;
            }
        }
        assert!(strong_hits >= weak_hits, "{strong_hits} vs {weak_hits}");
    }

    #[test]
    fn scores_relevant_instance_higher() {
        let (p, d, kb) = setup();
        let relevant = SerializedRecord::new(vec![
            ("name".into(), "Jack's Grill".into()),
            ("addr".into(), "10668 Pico Blvd".into()),
        ]);
        let irrelevant = SerializedRecord::new(vec![
            ("name".into(), "Tofu Palace".into()),
            ("addr".into(), "99 Elm St".into()),
        ]);
        let req = PriRequest {
            task: TaskKind::Imputation,
            query: "Border Grill, 100 Pico Blvd, city".into(),
            instances: vec![relevant, irrelevant],
        };
        let out = score_instances(&req, &p, &d, &kb);
        let scores = crate::protocol::parse_pri_response(&out);
        assert_eq!(scores.len(), 2);
        assert!(scores[0].1 >= scores[1].1, "{out}");
    }

    #[test]
    fn score_output_parseable() {
        let (p, d, kb) = setup();
        let req = PriRequest {
            task: TaskKind::Imputation,
            query: "x, y".into(),
            instances: vec![SerializedRecord::new(vec![("a".into(), "b".into())]); 5],
        };
        let out = score_instances(&req, &p, &d, &kb);
        assert_eq!(crate::protocol::parse_pri_response(&out).len(), 5);
    }
}
