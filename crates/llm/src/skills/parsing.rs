//! Context-data-parsing skill: answering `p_dp`.
//!
//! Converting `attr: value` pairs into fluent text is, as the paper notes,
//! "an easy job for LLMs": the relations are common and fixed. Strong models
//! do it near-perfectly; weak models occasionally drop a clause, which later
//! costs them at answer time.

use crate::profile::LlmProfile;
use crate::protocol::{naturalize_record, PdpRequest, SerializedRecord};
use crate::Dice;

/// Answers `p_dp`: one natural sentence per record, newline separated.
pub fn parse_context(req: &PdpRequest, profile: &LlmProfile, dice: &Dice) -> String {
    let mut out = Vec::with_capacity(req.records.len());
    for (i, rec) in req.records.iter().enumerate() {
        let rendered = rec.render();
        // A weak model sometimes drops a clause while rewriting.
        let keep_all = dice.chance(
            &format!("{rendered}#{i}"),
            "pdp-complete",
            profile.effective_instruction(),
        );
        let rec = if keep_all || rec.pairs.len() <= 2 {
            rec.clone()
        } else {
            let drop = dice.pick(&rendered, "pdp-drop", rec.pairs.len() - 1) + 1;
            SerializedRecord::new(
                rec.pairs
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != drop)
                    .map(|(_, p)| p.clone())
                    .collect(),
            )
        };
        out.push(naturalize_record(&rec));
    }
    out.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::parse_natural_sentence;

    fn record() -> SerializedRecord {
        SerializedRecord::new(vec![
            ("city".into(), "Florence".into()),
            ("country".into(), "Italy".into()),
            ("timezone".into(), "Central European Time".into()),
        ])
    }

    #[test]
    fn strong_model_keeps_all_clauses() {
        let req = PdpRequest {
            records: vec![record()],
        };
        let out = parse_context(&req, &LlmProfile::gpt4_turbo(), &Dice::new(1));
        let back = parse_natural_sentence(&out).unwrap();
        assert_eq!(back.get("country"), Some("Italy"));
        assert_eq!(back.get("timezone"), Some("Central European Time"));
    }

    #[test]
    fn one_sentence_per_record() {
        let req = PdpRequest {
            records: vec![record(), record(), record()],
        };
        let out = parse_context(&req, &LlmProfile::gpt3_175b(), &Dice::new(1));
        assert_eq!(out.lines().count(), 3);
    }

    #[test]
    fn weak_model_drops_clauses_sometimes() {
        let mut dropped = 0;
        let profile = LlmProfile::gptj_6b();
        for i in 0..50 {
            let mut rec = record();
            rec.pairs[0].1 = format!("City{i}");
            let req = PdpRequest { records: vec![rec] };
            let out = parse_context(&req, &profile, &Dice::new(9));
            let back = parse_natural_sentence(&out).unwrap();
            if back.pairs.len() < 3 {
                dropped += 1;
            }
        }
        assert!(dropped > 5, "weak model should degrade: {dropped}/50");
    }

    #[test]
    fn deterministic() {
        let req = PdpRequest {
            records: vec![record()],
        };
        let a = parse_context(&req, &LlmProfile::gpt3_175b(), &Dice::new(4));
        let b = parse_context(&req, &LlmProfile::gpt3_175b(), &Dice::new(4));
        assert_eq!(a, b);
    }
}
