//! Capability profiles: the model zoo of Tables 5 and 6.
//!
//! Each hosted model the paper evaluates is represented by a handful of
//! capability probabilities. The values are calibrated so that *relative*
//! behaviour matches the paper (GPT-4 > GPT-3 > Claude2 > LLaMA2-70B >
//! LLaMA2-7B ≈ Qwen-7B ≫ GPT-J-6B; fine-tuned 7B ≈ 175B); absolute numbers
//! carry no meaning beyond that ordering.

use crate::model::Usage;

/// Serving-latency profile of a model endpoint, in integer microseconds.
///
/// Where [`LlmProfile`] describes what a model *answers*, `LatencyProfile`
/// describes how long an attempt *takes*: a fixed per-request overhead plus
/// linear per-token terms (prompt tokens are prefill, completion tokens are
/// decode — decode dominates, as it does on real endpoints). Integer fields
/// keep the profile `Eq`/`Hash` and virtual timelines exactly reproducible.
///
/// The event-driven dispatcher (`unidm::dispatch`) uses this to schedule a
/// completion deadline for endpoints that have no [`crate::FaultPlan`]
/// attached; absolute values are illustrative, only the ordering across the
/// zoo is meaningful.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LatencyProfile {
    /// Fixed per-attempt overhead (queueing, network), microseconds.
    pub base_us: u64,
    /// Prefill cost per prompt token, microseconds.
    pub per_prompt_token_us: u64,
    /// Decode cost per completion token, microseconds.
    pub per_completion_token_us: u64,
}

impl LatencyProfile {
    /// The virtual latency of one attempt with the given token usage.
    pub fn latency_us(&self, usage: Usage) -> u64 {
        self.base_us
            + self.per_prompt_token_us * usage.prompt_tokens as u64
            + self.per_completion_token_us * usage.completion_tokens as u64
    }
}

impl Default for LatencyProfile {
    /// A generic hosted-endpoint shape: 20ms overhead, cheap prefill,
    /// 10ms/token decode.
    fn default() -> Self {
        LatencyProfile {
            base_us: 20_000,
            per_prompt_token_us: 50,
            per_completion_token_us: 10_000,
        }
    }
}

/// Capability profile of a simulated model.
#[derive(Debug, Clone, PartialEq)]
pub struct LlmProfile {
    /// Display name.
    pub name: String,
    /// Parameter count in billions (reported, not used mechanically).
    pub params_b: f64,
    /// Fraction of world facts present in pretraining memory, `[0, 1]`.
    pub knowledge: f64,
    /// Probability of correctly reading a fact that is present in prompt
    /// context rendered as natural text.
    pub context_fidelity: f64,
    /// Probability of performing a multi-hop / arithmetic / induction step
    /// correctly.
    pub reasoning: f64,
    /// Probability of following a meta-instruction (scoring, selection,
    /// format rewriting) correctly.
    pub instruction: f64,
    /// Quality of the model's yes/no decision boundary on binary
    /// classification prompts. Small chat models are notoriously
    /// mis-calibrated here even when they follow other instructions well —
    /// the paper's LLaMA2-7B scores 40.6 zero-shot ER F1 while managing 86%
    /// imputation accuracy.
    pub calibration: f64,
    /// Task competence added by fine-tuning, `[0, 1]`; `0` when not tuned.
    pub domain_adaptation: f64,
    /// Context window in tokens.
    pub context_window: usize,
}

impl LlmProfile {
    /// GPT-3-175B (`text-davinci-003`), the paper's default model.
    pub fn gpt3_175b() -> Self {
        LlmProfile {
            name: "GPT-3-175B".into(),
            params_b: 175.0,
            knowledge: 0.88,
            context_fidelity: 0.965,
            reasoning: 0.94,
            instruction: 0.93,
            calibration: 0.95,
            domain_adaptation: 0.0,
            context_window: 16_384,
        }
    }

    /// GPT-4-Turbo.
    pub fn gpt4_turbo() -> Self {
        LlmProfile {
            name: "GPT-4-Turbo".into(),
            params_b: 1000.0,
            knowledge: 0.95,
            context_fidelity: 0.99,
            reasoning: 0.97,
            instruction: 0.98,
            calibration: 0.97,
            domain_adaptation: 0.0,
            context_window: 128_000,
        }
    }

    /// Claude2 (about 100B per the paper).
    pub fn claude2() -> Self {
        LlmProfile {
            name: "Claude2".into(),
            params_b: 100.0,
            knowledge: 0.84,
            context_fidelity: 0.95,
            reasoning: 0.91,
            instruction: 0.93,
            calibration: 0.90,
            domain_adaptation: 0.0,
            context_window: 100_000,
        }
    }

    /// LLaMA2-7B.
    pub fn llama2_7b() -> Self {
        LlmProfile {
            name: "LLaMA2-7B".into(),
            params_b: 7.0,
            knowledge: 0.78,
            context_fidelity: 0.92,
            reasoning: 0.80,
            instruction: 0.84,
            calibration: 0.35,
            domain_adaptation: 0.0,
            context_window: 4_096,
        }
    }

    /// LLaMA2-70B.
    pub fn llama2_70b() -> Self {
        LlmProfile {
            name: "LLaMA2-70B".into(),
            params_b: 70.0,
            knowledge: 0.83,
            context_fidelity: 0.94,
            reasoning: 0.86,
            instruction: 0.89,
            calibration: 0.75,
            domain_adaptation: 0.0,
            context_window: 4_096,
        }
    }

    /// Qwen-7B.
    pub fn qwen_7b() -> Self {
        LlmProfile {
            name: "Qwen-7B".into(),
            params_b: 7.0,
            knowledge: 0.76,
            context_fidelity: 0.91,
            reasoning: 0.80,
            instruction: 0.83,
            calibration: 0.45,
            domain_adaptation: 0.0,
            context_window: 8_192,
        }
    }

    /// GPT-J-6B — an older base model with weak instruction following,
    /// which is why its zero-shot ER F1 collapses in Table 5.
    pub fn gptj_6b() -> Self {
        LlmProfile {
            name: "GPT-J-6B".into(),
            params_b: 6.0,
            knowledge: 0.55,
            context_fidelity: 0.75,
            reasoning: 0.55,
            instruction: 0.18,
            calibration: 0.15,
            domain_adaptation: 0.0,
            context_window: 2_048,
        }
    }

    /// The full zoo evaluated in Table 6, in the paper's row order.
    pub fn zoo() -> Vec<LlmProfile> {
        vec![
            Self::gpt3_175b(),
            Self::gpt4_turbo(),
            Self::claude2(),
            Self::llama2_7b(),
            Self::llama2_70b(),
            Self::qwen_7b(),
        ]
    }

    /// Effective instruction-following after fine-tuning.
    pub fn effective_instruction(&self) -> f64 {
        (self.instruction + self.domain_adaptation * (1.0 - self.instruction)).min(0.99)
    }

    /// Effective binary-decision calibration after fine-tuning. Training a
    /// head on labelled pairs is precisely what repairs a mis-calibrated
    /// decision boundary, so fine-tuning moves this the most.
    pub fn effective_calibration(&self) -> f64 {
        (self.calibration + self.domain_adaptation * (1.0 - self.calibration)).min(0.99)
    }

    /// Effective reasoning after fine-tuning.
    pub fn effective_reasoning(&self) -> f64 {
        (self.reasoning + 0.8 * self.domain_adaptation * (1.0 - self.reasoning)).min(0.99)
    }

    /// The serving-latency profile implied by this model's size: bigger
    /// models pay more per decoded token. Derived deterministically from
    /// `params_b` so the mapping stays `Eq`-stable across runs.
    pub fn latency(&self) -> LatencyProfile {
        // ~6ms/token for a 7B-class model up to ~25ms/token at 1T-class,
        // on a log-ish scale: decode_us = 5ms + 20us * sqrt(params_b * 1e3).
        let scaled = (self.params_b.max(1.0) * 1000.0).sqrt() as u64;
        LatencyProfile {
            base_us: 15_000,
            per_prompt_token_us: 40,
            per_completion_token_us: 5_000 + 20 * scaled,
        }
    }

    /// Billing cost per token in integer micro-units, derived
    /// deterministically from model size: `20 + 2 * params_b`. Absolute
    /// values carry no meaning, only the ratio across the zoo — a
    /// 175B-class model bills ~11× a 7B-class one, matching the order of
    /// magnitude real per-token price sheets show. Integer output keeps
    /// cascade cost accounting exact.
    pub fn cost_micro_per_token(&self) -> u64 {
        20 + (self.params_b.max(0.0) * 2.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_ordering() {
        let gpt4 = LlmProfile::gpt4_turbo();
        let gpt3 = LlmProfile::gpt3_175b();
        let l7 = LlmProfile::llama2_7b();
        let l70 = LlmProfile::llama2_70b();
        assert!(gpt4.knowledge > gpt3.knowledge);
        assert!(gpt3.knowledge > l70.knowledge);
        assert!(l70.knowledge > l7.knowledge);
    }

    #[test]
    fn gptj_weak_instructions() {
        assert!(LlmProfile::gptj_6b().instruction < 0.5);
    }

    #[test]
    fn fine_tuning_lifts_effective_capabilities() {
        let mut p = LlmProfile::gptj_6b();
        let before = p.effective_instruction();
        p.domain_adaptation = 0.9;
        assert!(p.effective_instruction() > before);
        assert!(p.effective_instruction() <= 0.99);
    }

    #[test]
    fn zoo_has_six_models() {
        assert_eq!(LlmProfile::zoo().len(), 6);
    }

    #[test]
    fn latency_profiles_order_by_model_size() {
        let small = LlmProfile::llama2_7b().latency();
        let big = LlmProfile::gpt4_turbo().latency();
        assert!(big.per_completion_token_us > small.per_completion_token_us);
        // Same profile, same latency — the mapping is a pure function.
        assert_eq!(small, LlmProfile::llama2_7b().latency());
    }

    #[test]
    fn token_costs_order_by_model_size_and_stay_exact() {
        let small = LlmProfile::llama2_7b().cost_micro_per_token();
        let large = LlmProfile::gpt3_175b().cost_micro_per_token();
        assert_eq!(small, 34);
        assert_eq!(large, 370);
        assert!(
            large > small * 10,
            "large must bill an order of magnitude above small"
        );
        // Pure function of the profile: identical across calls.
        assert_eq!(large, LlmProfile::gpt3_175b().cost_micro_per_token());
    }

    #[test]
    fn latency_is_linear_in_tokens() {
        let p = LatencyProfile {
            base_us: 1_000,
            per_prompt_token_us: 10,
            per_completion_token_us: 100,
        };
        let usage = Usage {
            prompt_tokens: 20,
            completion_tokens: 5,
        };
        assert_eq!(p.latency_us(usage), 1_000 + 200 + 500);
        assert_eq!(p.latency_us(Usage::default()), 1_000);
    }
}
