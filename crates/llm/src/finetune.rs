//! Lightweight fine-tuning simulation (Table 5).
//!
//! The paper freezes most pretrained parameters and trains a small head on
//! 6144 labelled Walmart-Amazon tuples for 30 epochs, which lifts GPT-J-6B
//! from 17.6 to 84.2 F1 (FM) and LLaMA2-7B from 40.6 to 89.4 (UniDM).
//! We simulate the *effect*: training examples raise the profile's
//! `domain_adaptation` with diminishing returns, which in turn sharpens the
//! entity-resolution decision boundary and instruction following.

use crate::mock::MockLlm;
use crate::profile::LlmProfile;

/// Outcome of a fine-tuning run.
#[derive(Debug, Clone, PartialEq)]
pub struct FineTuneReport {
    /// Training tuples seen per epoch.
    pub examples: usize,
    /// Number of epochs.
    pub epochs: usize,
    /// The resulting `domain_adaptation` value.
    pub domain_adaptation: f64,
}

/// The asymptotic competence a small trainable head can reach.
const ADAPTATION_CEILING: f64 = 0.95;
/// Gradient-step constant: how many example-presentations reach ~63% of the
/// ceiling.
const LEARNING_SCALE: f64 = 40_000.0;

/// Computes the post-fine-tuning `domain_adaptation` for a training budget.
///
/// Saturating exponential: doubling data helps less and less, matching the
/// classic fine-tuning curves the paper's setup reproduces.
pub fn adaptation_for(examples: usize, epochs: usize) -> f64 {
    let presentations = (examples * epochs) as f64;
    ADAPTATION_CEILING * (1.0 - (-presentations / LEARNING_SCALE).exp())
}

/// Fine-tunes `model` on `examples` labelled tuples for `epochs` epochs,
/// returning the adapted model and a report.
///
/// The returned model shares the original's pretraining memory and seed —
/// fine-tuning a head does not teach new world facts, it teaches the task.
pub fn fine_tune(model: &MockLlm, examples: usize, epochs: usize) -> (MockLlm, FineTuneReport) {
    let domain_adaptation = adaptation_for(examples, epochs);
    let profile = LlmProfile {
        name: format!("{} (fine-tune)", model.profile().name),
        domain_adaptation,
        ..model.profile().clone()
    };
    let report = FineTuneReport {
        examples,
        epochs,
        domain_adaptation,
    };
    (model.with_profile(profile), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use unidm_world::World;

    #[test]
    fn adaptation_monotone_with_diminishing_returns() {
        let small = adaptation_for(100, 1);
        let medium = adaptation_for(6144, 30);
        let large = adaptation_for(100_000, 100);
        assert!(small < medium);
        assert!(medium < large);
        assert!(large <= ADAPTATION_CEILING);
        // Diminishing: equal-sized later increments add less.
        let d1 = adaptation_for(2000, 1) - adaptation_for(1000, 1);
        let d2 = adaptation_for(3000, 1) - adaptation_for(2000, 1);
        assert!(d2 < d1);
    }

    #[test]
    fn paper_budget_near_ceiling() {
        let a = adaptation_for(6144, 30);
        assert!(a > 0.9, "6144×30 should saturate: {a}");
    }

    #[test]
    fn fine_tune_renames_and_adapts() {
        let world = World::generate(7);
        let base = MockLlm::new(&world, LlmProfile::gptj_6b(), 1);
        let (tuned, report) = fine_tune(&base, 6144, 30);
        assert!(tuned.profile().name.contains("fine-tune"));
        assert!(report.domain_adaptation > 0.9);
        assert!(tuned.profile().effective_instruction() > base.profile().effective_instruction());
        // Memory unchanged: fine-tuning does not add world knowledge.
        assert_eq!(tuned.kb().len(), base.kb().len());
    }

    #[test]
    fn zero_examples_no_adaptation() {
        assert_eq!(adaptation_for(0, 30), 0.0);
    }
}
