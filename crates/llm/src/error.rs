//! Error type for language-model calls.

use std::error::Error;
use std::fmt;

/// Errors a [`crate::LanguageModel`] call can produce.
///
/// The variants split into two classes that the resilient backend layer
/// (`unidm::backend`) treats differently:
///
/// * **Permanent** — [`LlmError::EmptyPrompt`], [`LlmError::PromptTooLong`]
///   and [`LlmError::DeadlineExceeded`]: retrying the identical call cannot
///   succeed, so they surface immediately.
/// * **Transient** — [`LlmError::Timeout`], [`LlmError::RateLimited`],
///   [`LlmError::Transient`] and [`LlmError::CircuitOpen`]: the endpoint
///   (or the client's own protection machinery) failed this *attempt*, and
///   a later attempt of the same call may succeed. [`LlmError::is_transient`]
///   is the classification the retry loop keys on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LlmError {
    /// The prompt exceeded the model's context window.
    PromptTooLong {
        /// Tokens in the prompt.
        tokens: usize,
        /// The model's context window.
        limit: usize,
    },
    /// The prompt was empty.
    EmptyPrompt,
    /// The endpoint did not answer within the attempt's time budget.
    Timeout {
        /// Virtual microseconds the attempt ran before giving up.
        elapsed_us: u64,
    },
    /// The endpoint rejected the attempt with a 429-style rate limit.
    RateLimited {
        /// How long the endpoint asked the client to back off, in
        /// microseconds (0 when the endpoint gave no hint).
        retry_after_us: u64,
    },
    /// The endpoint failed with a transient 5xx-style server error.
    Transient {
        /// The HTTP-style status code (500, 502, 503, ...).
        status: u16,
    },
    /// The client-side circuit breaker is open: recent attempts failed so
    /// consistently that the call was rejected without reaching the
    /// endpoint.
    CircuitOpen {
        /// Microseconds until the breaker half-opens and allows a probe.
        cooldown_us: u64,
    },
    /// The call's overall deadline passed before any attempt succeeded.
    DeadlineExceeded {
        /// The configured per-call deadline, in microseconds.
        deadline_us: u64,
    },
}

impl LlmError {
    /// Whether a later attempt of the identical call may succeed.
    ///
    /// Retry layers must only retry transient errors; permanent ones
    /// (malformed input, exhausted deadline) surface immediately.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            LlmError::Timeout { .. }
                | LlmError::RateLimited { .. }
                | LlmError::Transient { .. }
                | LlmError::CircuitOpen { .. }
        )
    }
}

impl fmt::Display for LlmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LlmError::PromptTooLong { tokens, limit } => {
                write!(
                    f,
                    "prompt of {tokens} tokens exceeds context window of {limit}"
                )
            }
            LlmError::EmptyPrompt => write!(f, "prompt is empty"),
            LlmError::Timeout { elapsed_us } => {
                write!(f, "attempt timed out after {elapsed_us}us")
            }
            LlmError::RateLimited { retry_after_us } => {
                write!(f, "rate limited (retry after {retry_after_us}us)")
            }
            LlmError::Transient { status } => {
                write!(f, "transient server error (status {status})")
            }
            LlmError::CircuitOpen { cooldown_us } => {
                write!(f, "circuit breaker open (half-opens in {cooldown_us}us)")
            }
            LlmError::DeadlineExceeded { deadline_us } => {
                write!(f, "call deadline of {deadline_us}us exceeded")
            }
        }
    }
}

impl Error for LlmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = LlmError::PromptTooLong {
            tokens: 9000,
            limit: 4096,
        };
        assert!(e.to_string().contains("9000"));
        assert_eq!(LlmError::EmptyPrompt.to_string(), "prompt is empty");
        assert!(LlmError::Timeout { elapsed_us: 5 }
            .to_string()
            .contains("5us"));
        assert!(LlmError::RateLimited { retry_after_us: 7 }
            .to_string()
            .contains("rate limited"));
        assert!(LlmError::Transient { status: 503 }
            .to_string()
            .contains("503"));
        assert!(LlmError::CircuitOpen { cooldown_us: 9 }
            .to_string()
            .contains("breaker"));
        assert!(LlmError::DeadlineExceeded { deadline_us: 11 }
            .to_string()
            .contains("deadline"));
    }

    #[test]
    fn transience_classification() {
        assert!(LlmError::Timeout { elapsed_us: 1 }.is_transient());
        assert!(LlmError::RateLimited { retry_after_us: 1 }.is_transient());
        assert!(LlmError::Transient { status: 500 }.is_transient());
        assert!(LlmError::CircuitOpen { cooldown_us: 1 }.is_transient());
        assert!(!LlmError::EmptyPrompt.is_transient());
        assert!(!LlmError::PromptTooLong {
            tokens: 1,
            limit: 0
        }
        .is_transient());
        assert!(!LlmError::DeadlineExceeded { deadline_us: 1 }.is_transient());
    }

    #[test]
    fn send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<LlmError>();
    }
}
