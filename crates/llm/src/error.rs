//! Error type for language-model calls.

use std::error::Error;
use std::fmt;

/// Errors a [`crate::LanguageModel`] call can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LlmError {
    /// The prompt exceeded the model's context window.
    PromptTooLong {
        /// Tokens in the prompt.
        tokens: usize,
        /// The model's context window.
        limit: usize,
    },
    /// The prompt was empty.
    EmptyPrompt,
}

impl fmt::Display for LlmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LlmError::PromptTooLong { tokens, limit } => {
                write!(
                    f,
                    "prompt of {tokens} tokens exceeds context window of {limit}"
                )
            }
            LlmError::EmptyPrompt => write!(f, "prompt is empty"),
        }
    }
}

impl Error for LlmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = LlmError::PromptTooLong {
            tokens: 9000,
            limit: 4096,
        };
        assert!(e.to_string().contains("9000"));
        assert_eq!(LlmError::EmptyPrompt.to_string(), "prompt is empty");
    }

    #[test]
    fn send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<LlmError>();
    }
}
