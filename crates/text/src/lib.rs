//! Text utilities shared across the UniDM reproduction.
//!
//! This crate provides the low-level lexical machinery every other layer
//! builds on:
//!
//! * [`tokenize`] — word segmentation and a subword-approximating token
//!   counter used for LLM token accounting (paper Table 7).
//! * [`distance`] — classic string distances (Levenshtein, Jaro-Winkler,
//!   Jaccard, Dice) used by retrieval baselines and error detectors.
//! * [`embed`] — deterministic hashed character-n-gram embeddings with cosine
//!   similarity, the substrate for IMP/Ditto/WarpGate-style baselines.
//! * [`tfidf`] — a small TF-IDF corpus model for instance weighting.
//! * [`mod@format`] — string format signatures (digit/letter/punctuation shape)
//!   used by the TDE baseline and the error-detection generators.
//! * [`normalize`] — canonicalisation helpers.
//!
//! # Examples
//!
//! ```
//! use unidm_text::distance::normalized_levenshtein;
//! use unidm_text::embed::Embedder;
//!
//! let sim = normalized_levenshtein("holoclean", "holodetect");
//! assert!(sim > 0.3 && sim < 1.0);
//!
//! let e = Embedder::default();
//! let a = e.embed("Central European Time");
//! let b = e.embed("Central European Timezone");
//! assert!(a.cosine(&b) > 0.8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distance;
pub mod embed;
pub mod format;
pub mod normalize;
pub mod tfidf;
pub mod tokenize;

pub use distance::{jaccard, jaro_winkler, levenshtein, normalized_levenshtein};
pub use embed::{Embedder, Embedding};
pub use tokenize::{count_tokens, words};
