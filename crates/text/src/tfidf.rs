//! A small TF-IDF corpus model.
//!
//! Used to weight tokens when matching records: rare tokens ("431") matter
//! more than ubiquitous ones ("the") when deciding whether two product
//! descriptions refer to the same entity.

use std::collections::HashMap;

use crate::tokenize::words;

/// TF-IDF statistics over a document corpus.
#[derive(Debug, Clone, Default)]
pub struct TfIdf {
    doc_freq: HashMap<String, usize>,
    num_docs: usize,
}

impl TfIdf {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a model from an iterator of documents.
    pub fn fit<'a, I>(docs: I) -> Self
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut m = Self::new();
        for d in docs {
            m.add_document(d);
        }
        m
    }

    /// Adds one document to the corpus statistics.
    pub fn add_document(&mut self, doc: &str) {
        self.num_docs += 1;
        let mut seen = std::collections::HashSet::new();
        for w in words(doc) {
            if seen.insert(w.clone()) {
                *self.doc_freq.entry(w).or_insert(0) += 1;
            }
        }
    }

    /// Number of documents the model has seen.
    pub fn num_docs(&self) -> usize {
        self.num_docs
    }

    /// Smoothed inverse document frequency of `token` (lowercased).
    ///
    /// Unknown tokens get the maximum IDF, matching the intuition that a
    /// never-seen token is maximally discriminative.
    pub fn idf(&self, token: &str) -> f64 {
        let df = self
            .doc_freq
            .get(&token.to_lowercase())
            .copied()
            .unwrap_or(0) as f64;
        ((1.0 + self.num_docs as f64) / (1.0 + df)).ln() + 1.0
    }

    /// TF-IDF weighted cosine similarity between two texts, in `[0, 1]`.
    pub fn similarity(&self, a: &str, b: &str) -> f64 {
        let va = self.vectorize(a);
        let vb = self.vectorize(b);
        if va.is_empty() || vb.is_empty() {
            return if va.is_empty() && vb.is_empty() {
                1.0
            } else {
                0.0
            };
        }
        let mut dot = 0.0;
        for (tok, wa) in &va {
            if let Some(wb) = vb.get(tok) {
                dot += wa * wb;
            }
        }
        let na: f64 = va.values().map(|w| w * w).sum::<f64>().sqrt();
        let nb: f64 = vb.values().map(|w| w * w).sum::<f64>().sqrt();
        (dot / (na * nb)).clamp(0.0, 1.0)
    }

    fn vectorize(&self, text: &str) -> HashMap<String, f64> {
        let mut tf: HashMap<String, f64> = HashMap::new();
        for w in words(text) {
            *tf.entry(w).or_insert(0.0) += 1.0;
        }
        for (tok, f) in tf.iter_mut() {
            *f *= self.idf(tok);
        }
        tf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TfIdf {
        TfIdf::fit([
            "the quick brown fox",
            "the lazy dog",
            "the quick dog",
            "a rare zebra",
        ])
    }

    #[test]
    fn idf_orders_rarity() {
        let m = model();
        assert!(m.idf("zebra") > m.idf("quick"));
        assert!(m.idf("quick") > m.idf("the"));
    }

    #[test]
    fn unknown_token_max_idf() {
        let m = model();
        assert!(m.idf("quux") >= m.idf("zebra"));
    }

    #[test]
    fn similarity_identity() {
        let m = model();
        assert!((m.similarity("quick brown fox", "quick brown fox") - 1.0).abs() < 1e-9);
    }

    #[test]
    fn similarity_rare_tokens_dominate() {
        let m = model();
        // Sharing "zebra" (rare) beats sharing "the" (common).
        let s_rare = m.similarity("rare zebra", "zebra sighting");
        let s_common = m.similarity("the fox", "the dog");
        assert!(s_rare > s_common);
    }

    #[test]
    fn similarity_empty() {
        let m = model();
        assert_eq!(m.similarity("", ""), 1.0);
        assert_eq!(m.similarity("fox", ""), 0.0);
    }

    #[test]
    fn incremental_fit_matches_batch() {
        let mut inc = TfIdf::new();
        inc.add_document("alpha beta");
        inc.add_document("beta gamma");
        let batch = TfIdf::fit(["alpha beta", "beta gamma"]);
        assert_eq!(inc.num_docs(), batch.num_docs());
        assert!((inc.idf("beta") - batch.idf("beta")).abs() < 1e-12);
    }
}
