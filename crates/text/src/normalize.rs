//! String canonicalisation helpers.

/// Lowercases, trims, and collapses internal whitespace runs to single spaces.
///
/// # Examples
///
/// ```
/// assert_eq!(unidm_text::normalize::canonical("  Los   ANGELES "), "los angeles");
/// ```
pub fn canonical(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut last_space = true;
    for ch in s.trim().chars() {
        if ch.is_whitespace() {
            if !last_space {
                out.push(' ');
                last_space = true;
            }
        } else {
            out.extend(ch.to_lowercase());
            last_space = false;
        }
    }
    out
}

/// Like [`canonical`] but also strips punctuation, keeping only letters,
/// digits and single spaces. Used for answer matching: an LLM answer of
/// `"Beverly Hills."` should equal the ground truth `"beverly hills"`.
pub fn answer_key(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut last_space = true;
    for ch in s.trim().chars() {
        if ch.is_alphanumeric() {
            out.extend(ch.to_lowercase());
            last_space = false;
        } else if !last_space {
            out.push(' ');
            last_space = true;
        }
    }
    out.trim_end().to_string()
}

/// Title-cases each word: `"los angeles"` → `"Los Angeles"`.
pub fn title_case(s: &str) -> String {
    s.split_whitespace()
        .map(|w| {
            let mut cs = w.chars();
            match cs.next() {
                Some(first) => first.to_uppercase().collect::<String>() + cs.as_str(),
                None => String::new(),
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_basic() {
        assert_eq!(canonical("New  York"), "new york");
        assert_eq!(canonical(""), "");
        assert_eq!(canonical("\tA\nB\t"), "a b");
    }

    #[test]
    fn answer_key_strips_punct() {
        assert_eq!(answer_key("Beverly Hills."), "beverly hills");
        assert_eq!(answer_key("  \"Yes\" "), "yes");
        assert_eq!(answer_key("U.S. Highway 431"), "u s highway 431");
    }

    #[test]
    fn answer_key_equates_variants() {
        assert_eq!(answer_key("Bill Evans"), answer_key("bill evans"));
        assert_ne!(answer_key("Bill Evans"), answer_key("Bill Frisell"));
    }

    #[test]
    fn title_case_works() {
        assert_eq!(title_case("los angeles"), "Los Angeles");
        assert_eq!(title_case(""), "");
        assert_eq!(title_case("a"), "A");
    }
}
