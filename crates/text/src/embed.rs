//! Deterministic hashed character-n-gram embeddings.
//!
//! The deep-learning baselines in the paper (IMP, Ditto, WarpGate) all reduce
//! to "embed strings, compare vectors, learn a threshold". Since no GPU model
//! is available offline, we use the classic fastText-style trick: hash every
//! character trigram and word into a fixed-dimension vector. The embedding is
//! deterministic, cheap, and — crucially — respects lexical similarity, which
//! is the property those baselines exploit on tabular data.

use crate::tokenize::{char_ngrams, words};

/// Dimensionality used by [`Embedder::default`].
pub const DEFAULT_DIM: usize = 128;

/// A dense embedding vector produced by an [`Embedder`].
#[derive(Debug, Clone, PartialEq)]
pub struct Embedding(Vec<f32>);

impl Embedding {
    /// Creates an embedding from raw components.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn new(values: Vec<f32>) -> Self {
        assert!(
            !values.is_empty(),
            "embedding must have at least one dimension"
        );
        Embedding(values)
    }

    /// The zero vector of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        Self::new(vec![0.0; dim])
    }

    /// Dimensionality of the vector.
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// Raw components.
    pub fn as_slice(&self) -> &[f32] {
        &self.0
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f32 {
        self.0.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Cosine similarity with `other`, in `[-1, 1]`; `0.0` if either is zero.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn cosine(&self, other: &Embedding) -> f32 {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        let dot: f32 = self.0.iter().zip(&other.0).map(|(a, b)| a * b).sum();
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            0.0
        } else {
            (dot / denom).clamp(-1.0, 1.0)
        }
    }

    /// Adds `other` into `self` (vector sum).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn add_assign(&mut self, other: &Embedding) {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a += b;
        }
    }

    /// Scales every component by `factor`.
    pub fn scale(&mut self, factor: f32) {
        for a in &mut self.0 {
            *a *= factor;
        }
    }
}

/// FNV-1a 64-bit hash, implemented locally to stay dependency-free.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Produces hashed n-gram embeddings of strings.
#[derive(Debug, Clone)]
pub struct Embedder {
    dim: usize,
    ngram: usize,
}

impl Default for Embedder {
    fn default() -> Self {
        Embedder {
            dim: DEFAULT_DIM,
            ngram: 3,
        }
    }
}

impl Embedder {
    /// Creates an embedder with explicit dimension and n-gram size.
    ///
    /// # Panics
    ///
    /// Panics if `dim` or `ngram` is zero.
    pub fn new(dim: usize, ngram: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(ngram > 0, "n-gram size must be positive");
        Embedder { dim, ngram }
    }

    /// Dimensionality of produced embeddings.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Embeds `text` into a unit-norm vector (zero vector for empty text).
    ///
    /// Character n-grams and whole words both contribute, so the embedding
    /// captures sub-token typos as well as token overlap.
    pub fn embed(&self, text: &str) -> Embedding {
        let mut v = vec![0.0f32; self.dim];
        let mut any = false;
        for gram in char_ngrams(text, self.ngram) {
            self.bump(&mut v, gram.as_bytes(), 1.0);
            any = true;
        }
        for word in words(text) {
            self.bump(&mut v, word.as_bytes(), 2.0);
            any = true;
        }
        let mut e = Embedding::new(v);
        if any {
            let n = e.norm();
            if n > 0.0 {
                e.scale(1.0 / n);
            }
        }
        e
    }

    /// Embeds a whole record: the mean of the field embeddings, renormalised.
    pub fn embed_fields<'a, I>(&self, fields: I) -> Embedding
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut acc = Embedding::zeros(self.dim);
        let mut n = 0usize;
        for f in fields {
            acc.add_assign(&self.embed(f));
            n += 1;
        }
        if n > 0 {
            acc.scale(1.0 / n as f32);
            let norm = acc.norm();
            if norm > 0.0 {
                acc.scale(1.0 / norm);
            }
        }
        acc
    }

    fn bump(&self, v: &mut [f32], bytes: &[u8], weight: f32) {
        let h = fnv1a(bytes);
        let idx = (h % self.dim as u64) as usize;
        // Second hash bit decides sign, which keeps expectation zero and
        // reduces collisions' systematic bias (feature hashing).
        let sign = if (h >> 63) == 0 { 1.0 } else { -1.0 };
        v[idx] += sign * weight;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedding_is_deterministic() {
        let e = Embedder::default();
        assert_eq!(e.embed("hello world"), e.embed("hello world"));
    }

    #[test]
    fn identical_strings_cosine_one() {
        let e = Embedder::default();
        let a = e.embed("Copenhagen Denmark");
        assert!((a.cosine(&a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn similar_strings_high_cosine() {
        let e = Embedder::default();
        let a = e.embed("ruth's chris steak house los angeles");
        let b = e.embed("ruth's chris steak house beverly hills");
        let c = e.embed("completely unrelated text about turtles");
        assert!(a.cosine(&b) > a.cosine(&c));
    }

    #[test]
    fn typo_still_similar() {
        let e = Embedder::default();
        let a = e.embed("sheffield");
        let b = e.embed("sheffxeld");
        assert!(a.cosine(&b) > 0.5, "typos share most trigrams");
    }

    #[test]
    fn empty_text_zero_vector() {
        let e = Embedder::default();
        let z = e.embed("");
        // Only padding bigram contributes; cosine with anything is defined.
        assert!(z.norm() >= 0.0);
    }

    #[test]
    fn unit_norm() {
        let e = Embedder::default();
        let a = e.embed("some nonempty text");
        assert!((a.norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn embed_fields_mean() {
        let e = Embedder::default();
        let rec = e.embed_fields(["punch home design", "punch software", "$199.99"]);
        assert_eq!(rec.dim(), DEFAULT_DIM);
        assert!((rec.norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn cosine_dim_mismatch_panics() {
        let a = Embedding::new(vec![1.0, 0.0]);
        let b = Embedding::new(vec![1.0, 0.0, 0.0]);
        let _ = a.cosine(&b);
    }

    #[test]
    fn fnv_spread() {
        // Hashes of similar strings should not collide into one bucket.
        let h1 = fnv1a(b"abc") % 128;
        let h2 = fnv1a(b"abd") % 128;
        let h3 = fnv1a(b"abe") % 128;
        assert!(!(h1 == h2 && h2 == h3));
    }
}
