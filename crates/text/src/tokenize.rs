//! Word segmentation and approximate LLM token counting.
//!
//! The token counter approximates byte-pair-encoding behaviour: short common
//! words cost one token, longer words are split into roughly four-character
//! chunks, and punctuation costs one token each. The absolute numbers do not
//! need to match any specific tokenizer — the paper's Table 7 compares
//! *relative* token consumption between methods, which this preserves.

/// Splits `text` into lowercase word tokens.
///
/// A word is a maximal run of alphanumeric characters; everything else is a
/// separator. The output preserves order and keeps duplicates.
///
/// # Examples
///
/// ```
/// let w = unidm_text::tokenize::words("The task is [data imputation].");
/// assert_eq!(w, vec!["the", "task", "is", "data", "imputation"]);
/// ```
pub fn words(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            cur.extend(ch.to_lowercase());
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Splits `text` into word and punctuation tokens, preserving case.
///
/// Unlike [`words`], punctuation characters are emitted as single-character
/// tokens rather than dropped, so the result can be used for token counting.
pub fn lex(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            cur.push(ch);
        } else {
            if !cur.is_empty() {
                out.push(std::mem::take(&mut cur));
            }
            if !ch.is_whitespace() {
                out.push(ch.to_string());
            }
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Number of characters a single subword chunk covers in [`count_tokens`].
const SUBWORD_CHARS: usize = 4;

/// Approximates the number of LLM tokens in `text`.
///
/// Words of up to `SUBWORD_CHARS` (4) characters count as one token; longer
/// words count one token per started four-character chunk. Punctuation
/// characters count one token each. The function is monotone: appending text
/// never decreases the count.
///
/// # Examples
///
/// ```
/// assert_eq!(unidm_text::tokenize::count_tokens(""), 0);
/// assert_eq!(unidm_text::tokenize::count_tokens("city"), 1);
/// assert!(unidm_text::tokenize::count_tokens("Copenhagen, Denmark") >= 4);
/// ```
pub fn count_tokens(text: &str) -> usize {
    lex(text)
        .iter()
        .map(|tok| {
            let chars = tok.chars().count();
            chars.div_ceil(SUBWORD_CHARS).max(1)
        })
        .sum()
}

/// Character n-grams of `text` (including word-boundary padding).
///
/// Used by the embedding layer; exposed here because the tokenizer owns the
/// character-level view of strings.
pub fn char_ngrams(text: &str, n: usize) -> Vec<String> {
    assert!(n > 0, "n-gram size must be positive");
    let padded: Vec<char> = std::iter::once(' ')
        .chain(text.chars().flat_map(|c| c.to_lowercase()))
        .chain(std::iter::once(' '))
        .collect();
    if padded.len() < n {
        return vec![padded.iter().collect()];
    }
    padded.windows(n).map(|w| w.iter().collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_basic() {
        assert_eq!(words("Hello, World!"), vec!["hello", "world"]);
    }

    #[test]
    fn words_empty() {
        assert!(words("").is_empty());
        assert!(words("  \t\n").is_empty());
    }

    #[test]
    fn words_numbers_kept() {
        assert_eq!(words("ipv4: 10.0.0.1"), vec!["ipv4", "10", "0", "0", "1"]);
    }

    #[test]
    fn lex_keeps_punctuation() {
        assert_eq!(lex("a,b"), vec!["a", ",", "b"]);
        assert_eq!(lex("x => y"), vec!["x", "=", ">", "y"]);
    }

    #[test]
    fn count_tokens_empty_is_zero() {
        assert_eq!(count_tokens(""), 0);
    }

    #[test]
    fn count_tokens_short_word() {
        assert_eq!(count_tokens("the"), 1);
        assert_eq!(count_tokens("city"), 1);
    }

    #[test]
    fn count_tokens_long_word_splits() {
        // "Copenhagen" has 10 chars -> ceil(10/4) = 3 tokens.
        assert_eq!(count_tokens("Copenhagen"), 3);
    }

    #[test]
    fn count_tokens_punct_counts() {
        assert_eq!(count_tokens("a,b"), 3);
    }

    #[test]
    fn count_tokens_monotone_under_append() {
        let a = "The task is data imputation.";
        let b = " The context is Florence.";
        let joined = format!("{a}{b}");
        assert!(count_tokens(&joined) >= count_tokens(a));
        assert!(count_tokens(&joined) >= count_tokens(b));
    }

    #[test]
    fn char_ngrams_padding() {
        let grams = char_ngrams("ab", 3);
        assert_eq!(grams, vec![" ab", "ab "]);
    }

    #[test]
    fn char_ngrams_short_string() {
        let grams = char_ngrams("", 3);
        assert_eq!(grams, vec!["  "]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn char_ngrams_zero_panics() {
        let _ = char_ngrams("abc", 0);
    }
}
