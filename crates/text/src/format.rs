//! String format signatures.
//!
//! A *format signature* abstracts a string into the shape of its characters:
//! runs of digits (`D`), letters (`A`), and the literal punctuation between
//! them. `"2021-03-15"` becomes `D4 '-' D2 '-' D2`. Signatures drive the TDE
//! transformation baseline (aligning input/output shapes) and the
//! error-detection generators (domain-violation detection).

use std::fmt;

/// One element of a format signature.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum FormatAtom {
    /// A run of ASCII digits of the given length.
    Digits(usize),
    /// A run of letters of the given length.
    Letters(usize),
    /// A run of whitespace.
    Space,
    /// A single literal symbol (punctuation).
    Symbol(char),
}

impl fmt::Display for FormatAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatAtom::Digits(n) => write!(f, "D{n}"),
            FormatAtom::Letters(n) => write!(f, "A{n}"),
            FormatAtom::Space => write!(f, "_"),
            FormatAtom::Symbol(c) => write!(f, "'{c}'"),
        }
    }
}

/// The format signature of a string: the sequence of its character-class runs.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct FormatSignature(Vec<FormatAtom>);

impl FormatSignature {
    /// Computes the signature of `s`.
    ///
    /// # Examples
    ///
    /// ```
    /// use unidm_text::format::FormatSignature;
    /// let sig = FormatSignature::of("2021-03-15");
    /// assert_eq!(sig.to_string(), "D4'-'D2'-'D2");
    /// ```
    pub fn of(s: &str) -> Self {
        let mut atoms = Vec::new();
        let mut chars = s.chars().peekable();
        while let Some(&c) = chars.peek() {
            if c.is_ascii_digit() {
                let mut n = 0;
                while chars.peek().is_some_and(|c| c.is_ascii_digit()) {
                    chars.next();
                    n += 1;
                }
                atoms.push(FormatAtom::Digits(n));
            } else if c.is_alphabetic() {
                let mut n = 0;
                while chars.peek().is_some_and(|c| c.is_alphabetic()) {
                    chars.next();
                    n += 1;
                }
                atoms.push(FormatAtom::Letters(n));
            } else if c.is_whitespace() {
                while chars.peek().is_some_and(|c| c.is_whitespace()) {
                    chars.next();
                }
                atoms.push(FormatAtom::Space);
            } else {
                chars.next();
                atoms.push(FormatAtom::Symbol(c));
            }
        }
        FormatSignature(atoms)
    }

    /// The atoms of the signature, in order.
    pub fn atoms(&self) -> &[FormatAtom] {
        &self.0
    }

    /// True if both strings would produce the same signature *shape*,
    /// ignoring run lengths (so `"ab-1"` matches `"xyz-22"`).
    pub fn same_shape(&self, other: &FormatSignature) -> bool {
        if self.0.len() != other.0.len() {
            return false;
        }
        self.0.iter().zip(&other.0).all(|(a, b)| {
            matches!(
                (a, b),
                (FormatAtom::Digits(_), FormatAtom::Digits(_))
                    | (FormatAtom::Letters(_), FormatAtom::Letters(_))
                    | (FormatAtom::Space, FormatAtom::Space)
            ) || a == b
        })
    }

    /// Fraction of positions where the signatures agree exactly, in `[0,1]`.
    ///
    /// Used as a cheap "is this value formatted like its column?" feature.
    pub fn agreement(&self, other: &FormatSignature) -> f64 {
        let n = self.0.len().max(other.0.len());
        if n == 0 {
            return 1.0;
        }
        let agree = self.0.iter().zip(&other.0).filter(|(a, b)| a == b).count();
        agree as f64 / n as f64
    }
}

impl fmt::Display for FormatSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for a in &self.0 {
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

/// Classifies a string into a coarse semantic type by format.
///
/// This mirrors the type detectors data-cleaning systems use before applying
/// type-specific rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoarseType {
    /// Only digits (optionally with sign).
    Integer,
    /// Digits with one decimal point.
    Decimal,
    /// Mostly letters.
    Text,
    /// Mixed letters/digits/punctuation.
    Mixed,
    /// Empty or whitespace.
    Empty,
}

/// Detects the [`CoarseType`] of `s`.
pub fn coarse_type(s: &str) -> CoarseType {
    let t = s.trim();
    if t.is_empty() {
        return CoarseType::Empty;
    }
    let body = t.strip_prefix(['-', '+']).unwrap_or(t);
    if !body.is_empty() && body.chars().all(|c| c.is_ascii_digit()) {
        return CoarseType::Integer;
    }
    let parts: Vec<&str> = body.split('.').collect();
    if parts.len() == 2
        && !parts[0].is_empty()
        && !parts[1].is_empty()
        && parts.iter().all(|p| p.chars().all(|c| c.is_ascii_digit()))
    {
        return CoarseType::Decimal;
    }
    let letters = t.chars().filter(|c| c.is_alphabetic()).count();
    let total = t.chars().filter(|c| !c.is_whitespace()).count();
    if total > 0 && letters * 10 >= total * 8 {
        CoarseType::Text
    } else {
        CoarseType::Mixed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signature_date() {
        assert_eq!(FormatSignature::of("20210315").to_string(), "D8");
        assert_eq!(
            FormatSignature::of("2021-03-15").to_string(),
            "D4'-'D2'-'D2"
        );
    }

    #[test]
    fn signature_mixed() {
        let sig = FormatSignature::of("Mar 15 2021");
        assert_eq!(sig.to_string(), "A3_D2_D4");
    }

    #[test]
    fn signature_empty() {
        assert_eq!(FormatSignature::of("").atoms().len(), 0);
    }

    #[test]
    fn same_shape_ignores_lengths() {
        let a = FormatSignature::of("ab-1");
        let b = FormatSignature::of("xyz-22");
        assert!(a.same_shape(&b));
        let c = FormatSignature::of("1-ab");
        assert!(!a.same_shape(&c));
    }

    #[test]
    fn agreement_bounds() {
        let a = FormatSignature::of("212/684-2122");
        let b = FormatSignature::of("415/399-0499");
        assert!((a.agreement(&b) - 1.0).abs() < 1e-12);
        let c = FormatSignature::of("not a phone");
        assert!(a.agreement(&c) < 1.0);
        assert_eq!(
            FormatSignature::of("").agreement(&FormatSignature::of("")),
            1.0
        );
    }

    #[test]
    fn coarse_types() {
        assert_eq!(coarse_type("12345"), CoarseType::Integer);
        assert_eq!(coarse_type("-42"), CoarseType::Integer);
        assert_eq!(coarse_type("3.14"), CoarseType::Decimal);
        assert_eq!(coarse_type("hello world"), CoarseType::Text);
        assert_eq!(coarse_type("u2 concert 1991"), CoarseType::Mixed);
        assert_eq!(coarse_type("   "), CoarseType::Empty);
    }
}
