//! Classic string distance and similarity measures.
//!
//! These power the non-LLM baselines (Magellan's feature vector, HoloDetect's
//! noisy-channel features, IMP's neighbour search) and the random/manual
//! context selection strategies of the FM baseline.

use crate::tokenize::{char_ngrams, words};

/// Levenshtein edit distance between `a` and `b`.
///
/// Runs in `O(|a| * |b|)` time and `O(min(|a|, |b|))` space.
///
/// # Examples
///
/// ```
/// assert_eq!(unidm_text::distance::levenshtein("kitten", "sitting"), 3);
/// assert_eq!(unidm_text::distance::levenshtein("", "abc"), 3);
/// ```
pub fn levenshtein(a: &str, b: &str) -> usize {
    let (short, long): (Vec<char>, Vec<char>) = {
        let ac: Vec<char> = a.chars().collect();
        let bc: Vec<char> = b.chars().collect();
        if ac.len() <= bc.len() {
            (ac, bc)
        } else {
            (bc, ac)
        }
    };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur = vec![0usize; short.len() + 1];
    for (i, lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, sc) in short.iter().enumerate() {
            let sub = prev[j] + usize::from(lc != sc);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// Levenshtein similarity normalised to `[0, 1]`; `1.0` means equal strings.
///
/// Two empty strings are defined to have similarity `1.0`.
pub fn normalized_levenshtein(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// Jaro similarity in `[0, 1]`.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches_a = Vec::new();
    for (i, ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == *ca {
                b_used[j] = true;
                matches_a.push((i, j));
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    // Transpositions: matched characters out of order.
    let mut b_order: Vec<usize> = matches_a.iter().map(|&(_, j)| j).collect();
    let sorted = {
        let mut s = b_order.clone();
        s.sort_unstable();
        s
    };
    let mut transpositions = 0usize;
    b_order.sort_by_key(|&j| matches_a.iter().position(|&(_, jj)| jj == j));
    for (x, y) in b_order.iter().zip(sorted.iter()) {
        if x != y {
            transpositions += 1;
        }
    }
    let t = transpositions as f64 / 2.0;
    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// Jaro-Winkler similarity in `[0, 1]`, boosting common prefixes.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    j + prefix * 0.1 * (1.0 - j)
}

/// Jaccard similarity of the word-token sets of `a` and `b`.
///
/// Two texts with no tokens at all have similarity `1.0`.
pub fn jaccard(a: &str, b: &str) -> f64 {
    let sa: std::collections::BTreeSet<String> = words(a).into_iter().collect();
    let sb: std::collections::BTreeSet<String> = words(b).into_iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count() as f64;
    let union = sa.union(&sb).count() as f64;
    inter / union
}

/// Sørensen–Dice coefficient over character bigrams, in `[0, 1]`.
pub fn dice_bigrams(a: &str, b: &str) -> f64 {
    let ga: Vec<String> = char_ngrams(a, 2);
    let gb: Vec<String> = char_ngrams(b, 2);
    if ga.is_empty() && gb.is_empty() {
        return 1.0;
    }
    let mut counts = std::collections::HashMap::new();
    for g in &ga {
        *counts.entry(g.clone()).or_insert(0usize) += 1;
    }
    let mut inter = 0usize;
    for g in &gb {
        if let Some(c) = counts.get_mut(g) {
            if *c > 0 {
                *c -= 1;
                inter += 1;
            }
        }
    }
    2.0 * inter as f64 / (ga.len() + gb.len()) as f64
}

/// Overlap (containment) coefficient of word-token sets: `|A ∩ B| / min(|A|, |B|)`.
///
/// This is the measure WarpGate-style join discovery uses on column values.
pub fn overlap_coefficient(a: &str, b: &str) -> f64 {
    let sa: std::collections::BTreeSet<String> = words(a).into_iter().collect();
    let sb: std::collections::BTreeSet<String> = words(b).into_iter().collect();
    if sa.is_empty() || sb.is_empty() {
        return 0.0;
    }
    let inter = sa.intersection(&sb).count() as f64;
    inter / sa.len().min(sb.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_identity() {
        assert_eq!(levenshtein("abc", "abc"), 0);
    }

    #[test]
    fn levenshtein_symmetry() {
        assert_eq!(levenshtein("flaw", "lawn"), levenshtein("lawn", "flaw"));
    }

    #[test]
    fn levenshtein_known_values() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("gumbo", "gambol"), 2);
        assert_eq!(levenshtein("", ""), 0);
    }

    #[test]
    fn levenshtein_unicode() {
        assert_eq!(levenshtein("café", "cafe"), 1);
    }

    #[test]
    fn normalized_levenshtein_bounds() {
        for (a, b) in [("a", "b"), ("same", "same"), ("", "x"), ("abcd", "wxyz")] {
            let s = normalized_levenshtein(a, b);
            assert!((0.0..=1.0).contains(&s), "{a} vs {b} -> {s}");
        }
        assert_eq!(normalized_levenshtein("", ""), 1.0);
        assert_eq!(normalized_levenshtein("same", "same"), 1.0);
        assert_eq!(normalized_levenshtein("abcd", "wxyz"), 0.0);
    }

    #[test]
    fn jaro_identity_and_disjoint() {
        assert!((jaro("martha", "martha") - 1.0).abs() < 1e-12);
        assert_eq!(jaro("abc", "xyz"), 0.0);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
    }

    #[test]
    fn jaro_winkler_prefers_prefix() {
        let jw_prefix = jaro_winkler("prefixed", "prefixes");
        let jw_suffix = jaro_winkler("xprefixed", "yprefixed");
        assert!(jw_prefix > jw_suffix);
    }

    #[test]
    fn jaro_winkler_bounds() {
        for (a, b) in [("dwayne", "duane"), ("dixon", "dicksonx"), ("", "")] {
            let s = jaro_winkler(a, b);
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn jaccard_tokens() {
        assert!((jaccard("red blue", "blue red") - 1.0).abs() < 1e-12);
        assert!((jaccard("red blue", "blue green") - (1.0 / 3.0)).abs() < 1e-12);
        assert_eq!(jaccard("", ""), 1.0);
        assert_eq!(jaccard("a", ""), 0.0);
    }

    #[test]
    fn dice_bigrams_similar_strings() {
        assert!(dice_bigrams("night", "nacht") > 0.0);
        assert!((dice_bigrams("abc", "abc") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_containment() {
        // All tokens of the smaller set contained in the larger one.
        assert!((overlap_coefficient("GER ITA", "GER ITA FRA ESP") - 1.0).abs() < 1e-12);
        assert_eq!(overlap_coefficient("AAA", "BBB"), 0.0);
        assert_eq!(overlap_coefficient("", "x"), 0.0);
    }
}
