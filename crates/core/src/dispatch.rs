//! The event-driven dispatcher: a hand-rolled reactor over the
//! [`Clock`] seam that overlaps hundreds of in-flight requests in
//! virtual time — no async runtime, fully deterministic offline.
//!
//! # Why a reactor
//!
//! The blocking [`crate::backend::ResilientBackend`] parks one worker
//! thread per round-trip, so in-flight concurrency is capped by thread
//! count, and on a [`VirtualClock`] every concurrent sleep *adds* (elapsed
//! virtual time is total latency, never the makespan). The [`Dispatcher`]
//! replaces sleeping with scheduling: each attempt is *sampled*
//! ([`SimBackend::sample_attempt`] commits a fault-schedule slot without
//! sleeping) and its completion is placed on a [`TimerWheel`] at
//! `now + latency_us`; the reactor advances the clock with
//! [`VirtualClock::advance_to_micros`] to the next pending deadline, so
//! overlapped requests overlap and elapsed time measures the makespan.
//! Concurrency is bounded by [`crate::backend::BackendConfig::max_in_flight`]
//! — an in-flight *budget*, not a thread count.
//!
//! # The quiescence protocol
//!
//! There is no reactor thread. Caller threads submit a request and park on
//! one condvar; the reactor steps only when **every registered thread is
//! parked** (quiescent), at which point the last parker becomes the driver:
//! it drains newly-submitted requests in canonical (prompt-sorted) order,
//! then pops timer events — advancing the clock deadline by deadline —
//! until at least one request resolves, and wakes everyone. Because time
//! only moves at quiescent points and submissions are admitted in a
//! canonical order, the entire virtual timeline (dispatch times, hedge
//! decisions, every counter) is a pure function of the *set* of requests,
//! independent of thread scheduling.
//!
//! Threads register in one of two ways:
//!
//! * **Transient** — any unregistered caller of `complete` is registered
//!   for the duration of the call. This mode is deadlock-free by
//!   construction (every registered thread is inside the dispatcher and
//!   will park), and it makes single-threaded use fully self-driving, so
//!   the ten eval drivers work unchanged. Time may advance while another
//!   thread is *between* calls, so cross-run timeline determinism is only
//!   guaranteed serially.
//! * **Long-lived** — [`Dispatcher::register`] returns an RAII guard; a
//!   registered worker counts toward quiescence even between calls. This
//!   is what [`crate::BatchRunner`]'s pipelined mode uses: with every
//!   worker registered for the whole batch, the timeline is deterministic
//!   at any worker count. The contract is that registered threads must not
//!   block on anything *outside* the dispatcher — in particular, a
//!   [`crate::PromptCache`] layered above a pipelined dispatcher must have
//!   cache-level single-flight disabled
//!   ([`crate::PromptCache::with_single_flight`]); the dispatcher's own
//!   request-level single-flight and memo provide the same guarantee
//!   (endpoint calls == unique prompts). As a last-resort escape valve, a
//!   parked thread that has waited ~250ms of *wall* time with no progress
//!   force-drives the reactor: a mis-wired composition degrades to slow
//!   nondeterministic timelines instead of hanging.
//!
//! # Hedged requests
//!
//! With a [`HedgePolicy`] configured, every dispatched attempt arms a hedge
//! timer at the observed attempt-latency quantile (the streaming
//! [`crate::backend::LatencySketch`] in [`BackendStats`], integer
//! microseconds only). If the attempt is still running when the timer
//! fires, a duplicate attempt is issued — consuming an in-flight budget
//! slot but **no** rate-limit token — and the first response wins: the
//! loser's completion timer is cancelled, its (identical) result is never
//! delivered and never memoized. Hedging is fully accounted by the
//! `hedges_*` counters and bit-for-bit deterministic under the seeded sim.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::{self, ThreadId};
use std::time::Duration;

use unidm_llm::{
    AttemptSample, Clock, Completion, Dice, FaultStats, LanguageModel, LatencyProfile, LlmError,
    SimBackend, TimerWheel, Usage, VirtualClock,
};

use crate::backend::{BackendConfig, BackendStats, TOKEN};

/// How long a parked thread waits (wall time) before suspecting that a
/// registered peer is blocked outside the dispatcher and force-driving the
/// reactor. Generous: correctly-wired compositions reach quiescence in
/// microseconds.
const STALL_ESCAPE: Duration = Duration::from_millis(250);

/// When to issue a hedged duplicate for a straggling attempt.
///
/// The timer arms at the `quantile_permille`-th quantile of *observed*
/// successful attempt latencies (clamped below by `min_delay_us`), once at
/// least `min_samples` latencies have been recorded. Pick an arming
/// quantile **above** the workload's tail mass: against a 3% heavy tail, a
/// P99 estimate sits *on* the 2-second stragglers (hedging would arm too
/// late to help), while P90 sits on the fast mode and catches every
/// straggler — see `FaultPlan::heavy_tail`.
///
/// Integer-only fields keep the policy `Eq`/`Hash` and hedging decisions
/// exactly reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HedgePolicy {
    /// The armed latency quantile, in permille (990 = P99).
    pub quantile_permille: u32,
    /// Successful attempts observed before hedging arms at all.
    pub min_samples: u64,
    /// Lower bound on the hedge delay, in microseconds.
    pub min_delay_us: u64,
    /// Maximum duplicates per logical request.
    pub max_hedges: u32,
}

impl HedgePolicy {
    /// Hedge at the observed P99 (suits tails rarer than 1%).
    pub fn p99() -> Self {
        Self::at_quantile(990)
    }

    /// Hedge at an arbitrary observed quantile, in permille.
    pub fn at_quantile(quantile_permille: u32) -> Self {
        HedgePolicy {
            quantile_permille: quantile_permille.min(1000),
            min_samples: 32,
            min_delay_us: 1_000,
            max_hedges: 1,
        }
    }

    /// Replaces the warm-up sample count (builder-style).
    pub fn with_min_samples(mut self, min_samples: u64) -> Self {
        self.min_samples = min_samples;
        self
    }

    /// Replaces the minimum hedge delay (builder-style).
    pub fn with_min_delay_us(mut self, min_delay_us: u64) -> Self {
        self.min_delay_us = min_delay_us;
        self
    }
}

impl Default for HedgePolicy {
    fn default() -> Self {
        Self::p99()
    }
}

/// The endpoint the reactor samples attempts from.
enum Endpoint<'a> {
    /// No fault plan: call the model immediately and derive the attempt's
    /// virtual latency from its [`LatencyProfile`].
    Direct {
        model: &'a dyn LanguageModel,
        profile: LatencyProfile,
    },
    /// A fault plan: the injector commits schedule slots without sleeping.
    Sim(Box<SimBackend<'a>>),
}

impl Endpoint<'_> {
    fn model(&self) -> &dyn LanguageModel {
        match self {
            Endpoint::Direct { model, .. } => *model,
            Endpoint::Sim(sim) => sim.as_ref(),
        }
    }

    fn sample(&self, prompt: &str) -> AttemptSample {
        match self {
            Endpoint::Sim(sim) => sim.sample_attempt(prompt),
            Endpoint::Direct { model, profile } => {
                let result = model.complete(prompt);
                let latency_us = match &result {
                    Ok(c) => profile.latency_us(c.usage),
                    Err(_) => profile.base_us,
                };
                AttemptSample { latency_us, result }
            }
        }
    }
}

/// One attempt copy in flight: its completion timer and what it will
/// deliver when that timer fires.
struct InFlightCopy {
    timer: u64,
    sample: AttemptSample,
    is_hedge: bool,
}

/// One logical request: submitted once, possibly coalescing several
/// callers, retried and hedged as needed, resolved exactly once.
struct Request {
    prompt: String,
    submitted_us: u64,
    retries: u32,
    hedged: u32,
    copies: Vec<InFlightCopy>,
    hedge_timer: Option<u64>,
    waiters: usize,
    resolved: Option<Result<Arc<Completion>, LlmError>>,
}

/// What a popped timer means.
enum Event {
    /// Start the request's next logical attempt (pacing grant reached).
    Dispatch(u64),
    /// A copy's completion deadline fired.
    Complete(u64),
    /// The request's hedge timer fired while it was still pending.
    Hedge(u64),
    /// The request's retry backoff elapsed: re-admit it.
    Retry(u64),
}

/// Token bucket in virtual-scheduling form: instead of sleeping for a
/// token, [`Dispatcher`] computes the future grant time at which the token
/// will have dripped in and schedules the dispatch there.
struct PaceBucket {
    units: u64,
    last_us: u64,
}

/// Everything the reactor mutates, under one mutex.
struct Core {
    wheel: TimerWheel,
    events: HashMap<u64, Event>,
    requests: HashMap<u64, Request>,
    /// Pending (unresolved) requests by prompt — request-level single-flight.
    by_prompt: HashMap<String, u64>,
    /// Resolved successes by prompt: late arrivals after resolution are
    /// answered here, which keeps endpoint calls == unique prompts even
    /// with no cache above the dispatcher. Unbounded, like the fault
    /// injector's per-prompt schedule state.
    memo: HashMap<String, Arc<Completion>>,
    /// Newly submitted request ids, admitted in canonical (prompt-sorted)
    /// order at the next reactor step.
    fresh: Vec<u64>,
    /// Requests waiting for an in-flight budget slot, FIFO.
    admit_queue: VecDeque<u64>,
    in_flight: u32,
    registered: HashSet<ThreadId>,
    parked: usize,
    bucket: Option<PaceBucket>,
    stats: BackendStats,
    next_id: u64,
}

/// The event-driven dispatcher (see the [module docs](self)).
///
/// Exposes [`LanguageModel`], so it slots in exactly where
/// [`crate::backend::ResilientBackend`] does:
///
/// ```text
/// PromptCache → Dispatcher (reactor: budget, pacing, retry, hedge) → SimBackend → MockLlm
/// ```
///
/// Built by [`BackendConfig::wrap`] when
/// [`pipelined`](BackendConfig::pipelined) or a [`HedgePolicy`] is set.
pub struct Dispatcher<'a> {
    endpoint: Endpoint<'a>,
    config: BackendConfig,
    clock: Arc<VirtualClock>,
    dice: Dice,
    core: Mutex<Core>,
    wakeup: Condvar,
}

impl std::fmt::Debug for Dispatcher<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dispatcher")
            .field("endpoint", &self.endpoint.model().name())
            .field("config", &self.config)
            .field("stats", &self.stats())
            .finish()
    }
}

impl<'a> Dispatcher<'a> {
    /// Builds a dispatcher over `inner` on a fresh [`VirtualClock`]. When
    /// [`BackendConfig::faults`] is set, a [`SimBackend`] sharing that
    /// clock is interposed and attempts are sampled from its schedule;
    /// otherwise latencies come from the model's [`LatencyProfile`].
    pub fn new(inner: &'a dyn LanguageModel, config: BackendConfig) -> Self {
        let clock = Arc::new(VirtualClock::new());
        let endpoint = match config.faults {
            Some(plan) => {
                let shared: Arc<dyn Clock> = clock.clone();
                Endpoint::Sim(Box::new(SimBackend::with_clock(inner, plan, shared)))
            }
            None => Endpoint::Direct {
                model: inner,
                profile: inner.latency_profile(),
            },
        };
        Dispatcher {
            endpoint,
            clock,
            dice: Dice::new(config.seed),
            core: Mutex::new(Core {
                wheel: TimerWheel::new(),
                events: HashMap::new(),
                requests: HashMap::new(),
                by_prompt: HashMap::new(),
                memo: HashMap::new(),
                fresh: Vec::new(),
                admit_queue: VecDeque::new(),
                in_flight: 0,
                registered: HashSet::new(),
                parked: 0,
                bucket: config.rate.map(|rate| PaceBucket {
                    units: rate.burst * TOKEN,
                    last_us: 0,
                }),
                stats: BackendStats::default(),
                next_id: 0,
            }),
            wakeup: Condvar::new(),
            config,
        }
    }

    /// The configuration the dispatcher runs with.
    pub fn config(&self) -> &BackendConfig {
        &self.config
    }

    /// The virtual clock the reactor advances; its elapsed time is the
    /// makespan of everything dispatched so far.
    pub fn clock(&self) -> &Arc<VirtualClock> {
        &self.clock
    }

    /// A snapshot of the backend counters (including the latency sketches
    /// and hedge counters).
    pub fn stats(&self) -> BackendStats {
        self.lock().stats
    }

    /// Injection counters of the owned fault injector, when
    /// [`BackendConfig::faults`] is set.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        match &self.endpoint {
            Endpoint::Sim(sim) => Some(sim.stats()),
            Endpoint::Direct { .. } => None,
        }
    }

    /// Registers the current thread as long-lived for the quiescence
    /// protocol until the returned guard drops. See the [module
    /// docs](self) for the no-blocking-outside-the-dispatcher contract.
    /// Re-registering an already-registered thread returns a no-op guard.
    pub fn register(&self) -> DispatchRegistration<'_, 'a> {
        let tid = thread::current().id();
        let active = self.lock().registered.insert(tid);
        DispatchRegistration {
            dispatcher: self,
            tid,
            active,
        }
    }

    fn lock(&self) -> MutexGuard<'_, Core> {
        self.core.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn budget(&self) -> u32 {
        match self.config.max_in_flight {
            0 => u32::MAX,
            n => n,
        }
    }

    /// Backoff before retry `n` (1-based) of `prompt`: exponential from
    /// the policy base, capped, jittered into `[50%, 100%]` by a
    /// deterministic draw — identical math to the blocking stack.
    fn backoff_us(&self, prompt: &str, retry: u32) -> u64 {
        let policy = self.config.retry;
        let doubled = policy
            .base_backoff_us
            .saturating_mul(1u64 << (retry - 1).min(32));
        let ceiling = doubled.min(policy.max_backoff_us);
        let jitter = self.dice.uniform(prompt, &format!("backoff-{retry}"));
        ceiling / 2 + ((ceiling / 2) as f64 * jitter) as u64
    }

    /// Consumes one rate-limit token, returning the virtual time at which
    /// the dispatch may start (`now` when a token is available, the future
    /// drip-in time otherwise — the event-driven analogue of sleeping on
    /// the bucket).
    fn pace_grant(&self, core: &mut Core) -> u64 {
        let now = self.clock.now_micros();
        let Some(rate) = self.config.rate else {
            return now;
        };
        let bucket = core.bucket.as_mut().expect("rate limit implies bucket");
        let cap = u128::from(rate.burst) * u128::from(TOKEN);
        // `last_us` is the horizon the bucket is accounted through; grants
        // issued into the future push it ahead of `now`, and it never
        // rewinds (tokens committed to future grants stay committed).
        if now > bucket.last_us {
            let refill = u128::from(now - bucket.last_us) * u128::from(rate.tokens_per_sec);
            bucket.units = (u128::from(bucket.units) + refill).min(cap) as u64;
            bucket.last_us = now;
        }
        core.stats.rate_tokens += 1;
        let grant = if bucket.units >= TOKEN {
            bucket.units -= TOKEN;
            bucket.last_us
        } else {
            let wait = (TOKEN - bucket.units).div_ceil(rate.tokens_per_sec);
            // Consume the token that will have dripped in by the grant.
            let dripped =
                u128::from(bucket.units) + u128::from(wait) * u128::from(rate.tokens_per_sec);
            bucket.units = (dripped.min(cap) as u64) - TOKEN;
            bucket.last_us += wait;
            bucket.last_us
        };
        if grant > now {
            core.stats.throttle_waits += 1;
            core.stats.throttle_wait_us += grant - now;
        }
        grant
    }

    /// Queues `id` for admission and admits as many queued requests as the
    /// in-flight budget allows, each through a pacing grant.
    fn admit(&self, core: &mut Core, id: u64) {
        core.admit_queue.push_back(id);
        self.pump(core);
    }

    fn pump(&self, core: &mut Core) {
        let budget = self.budget();
        while core.in_flight < budget {
            let Some(id) = core.admit_queue.pop_front() else {
                break;
            };
            core.in_flight += 1;
            let grant = self.pace_grant(core);
            let seq = core.wheel.schedule(grant);
            core.events.insert(seq, Event::Dispatch(id));
        }
    }

    /// Samples one attempt copy of `id` and schedules its completion. The
    /// caller has already reserved the budget slot.
    fn launch_copy(&self, core: &mut Core, id: u64, is_hedge: bool) {
        let prompt = core.requests[&id].prompt.clone();
        core.stats.attempts += 1;
        let sample = self.endpoint.sample(&prompt);
        match &sample.result {
            Err(LlmError::Timeout { .. }) => core.stats.timeouts += 1,
            Err(LlmError::RateLimited { .. }) => core.stats.rate_limited += 1,
            Err(LlmError::Transient { .. }) => core.stats.transients += 1,
            _ => {}
        }
        let deadline = self.clock.now_micros() + sample.latency_us;
        let timer = core.wheel.schedule(deadline);
        core.events.insert(timer, Event::Complete(id));
        core.requests
            .get_mut(&id)
            .expect("launched request exists")
            .copies
            .push(InFlightCopy {
                timer,
                sample,
                is_hedge,
            });
    }

    /// A logical attempt's pacing grant arrived: launch the primary copy
    /// and arm the hedge timer when the estimator is warm.
    fn on_dispatch(&self, core: &mut Core, id: u64) {
        self.launch_copy(core, id, false);
        let Some(policy) = self.config.hedge else {
            return;
        };
        let warm = core.stats.attempt_latency.samples() >= policy.min_samples;
        let req = core
            .requests
            .get_mut(&id)
            .expect("dispatched request exists");
        if !warm || req.hedged >= policy.max_hedges {
            return;
        }
        let delay = core
            .stats
            .attempt_latency
            .quantile_us(policy.quantile_permille)
            .max(policy.min_delay_us);
        let seq = core.wheel.schedule(self.clock.now_micros() + delay);
        core.events.insert(seq, Event::Hedge(id));
        core.requests
            .get_mut(&id)
            .expect("request exists")
            .hedge_timer = Some(seq);
    }

    /// The hedge timer fired while the request was still pending: issue a
    /// duplicate if the budget has room (no rate-limit token is taken).
    fn on_hedge(&self, core: &mut Core, id: u64) {
        core.requests
            .get_mut(&id)
            .expect("hedge timer implies pending request")
            .hedge_timer = None;
        if core.in_flight >= self.budget() {
            core.stats.hedges_suppressed += 1;
            return;
        }
        core.in_flight += 1;
        core.stats.hedges_issued += 1;
        core.requests.get_mut(&id).expect("request exists").hedged += 1;
        self.launch_copy(core, id, true);
    }

    /// A copy's completion deadline fired. Returns how many requests
    /// resolved (0 or 1).
    fn on_complete(&self, core: &mut Core, id: u64, timer: u64) -> usize {
        let mut req = core
            .requests
            .remove(&id)
            .expect("completing request exists");
        let idx = req
            .copies
            .iter()
            .position(|c| c.timer == timer)
            .expect("completion timer matches a copy");
        let copy = req.copies.swap_remove(idx);
        core.in_flight -= 1;

        let resolutions = match copy.sample.result {
            Ok(completion) => {
                // First response wins: cancel the losing copies — their
                // results are never delivered and never memoized.
                if copy.is_hedge {
                    core.stats.hedges_won += 1;
                }
                for loser in req.copies.drain(..) {
                    core.wheel.cancel(loser.timer);
                    core.events.remove(&loser.timer);
                    core.in_flight -= 1;
                    core.stats.hedges_cancelled += 1;
                }
                self.cancel_hedge_timer(core, &mut req);
                core.stats.attempt_latency.record(copy.sample.latency_us);
                core.stats
                    .request_latency
                    .record(self.clock.now_micros() - req.submitted_us);
                core.by_prompt.remove(&req.prompt);
                core.memo.insert(req.prompt.clone(), completion.clone());
                req.resolved = Some(Ok(completion));
                core.parked -= req.waiters;
                1
            }
            Err(_) if !req.copies.is_empty() => {
                // Another copy of the same attempt wave is still racing;
                // drop this one quietly and let the race finish.
                0
            }
            Err(err) if err.is_transient() && req.retries < self.config.retry.max_retries => {
                req.retries += 1;
                core.stats.retries += 1;
                self.cancel_hedge_timer(core, &mut req);
                let mut backoff = self.backoff_us(&req.prompt, req.retries);
                if let LlmError::RateLimited { retry_after_us } = err {
                    backoff = backoff.max(retry_after_us);
                }
                let seq = core.wheel.schedule(self.clock.now_micros() + backoff);
                core.events.insert(seq, Event::Retry(id));
                0
            }
            Err(err) => {
                // Permanent, or out of retries: resolve with the error.
                // Errors are never memoized — a later identical call gets
                // a fresh request.
                self.cancel_hedge_timer(core, &mut req);
                core.stats.failures += 1;
                core.by_prompt.remove(&req.prompt);
                req.resolved = Some(Err(err));
                core.parked -= req.waiters;
                1
            }
        };
        core.requests.insert(id, req);
        // The freed slot(s) may admit queued requests.
        self.pump(core);
        resolutions
    }

    fn cancel_hedge_timer(&self, core: &mut Core, req: &mut Request) {
        if let Some(seq) = req.hedge_timer.take() {
            core.wheel.cancel(seq);
            core.events.remove(&seq);
        }
    }

    /// One reactor run: admit fresh submissions in canonical order, then
    /// advance deadline by deadline until at least one request resolves.
    /// Must only be called at quiescence (or from the stall escape valve).
    fn drive(&self, core: &mut Core) {
        if !core.fresh.is_empty() {
            let mut fresh = std::mem::take(&mut core.fresh);
            fresh.sort_unstable_by(|a, b| core.requests[a].prompt.cmp(&core.requests[b].prompt));
            for id in fresh {
                self.admit(core, id);
            }
        }
        let mut resolutions = 0usize;
        while resolutions == 0 {
            let Some(deadline) = core.wheel.next_deadline() else {
                // Unreachable by the admission invariant: every unresolved
                // request owns a pending event (or is queued behind one).
                // Failing loudly beats spinning.
                panic!("dispatcher stalled: pending requests but no scheduled events");
            };
            self.clock.advance_to_micros(deadline);
            while core.wheel.next_deadline() == Some(deadline) {
                let (_, seq) = core.wheel.pop_next().expect("peeked deadline pops");
                match core.events.remove(&seq).expect("event for live timer") {
                    Event::Dispatch(id) => self.on_dispatch(core, id),
                    Event::Retry(id) => self.admit(core, id),
                    Event::Hedge(id) => self.on_hedge(core, id),
                    Event::Complete(id) => resolutions += self.on_complete(core, id, seq),
                }
            }
        }
        self.wakeup.notify_all();
    }

    fn complete_inner(&self, prompt: &str) -> Result<Arc<Completion>, LlmError> {
        let tid = thread::current().id();
        let mut core = self.lock();
        core.stats.calls += 1;
        if let Some(hit) = core.memo.get(prompt).cloned() {
            core.stats.dispatch_coalesced += 1;
            return Ok(hit);
        }
        let transient = core.registered.insert(tid);
        let id = match core.by_prompt.get(prompt) {
            Some(&id) => {
                core.stats.dispatch_coalesced += 1;
                id
            }
            None => {
                let id = core.next_id;
                core.next_id += 1;
                core.requests.insert(
                    id,
                    Request {
                        prompt: prompt.to_string(),
                        submitted_us: self.clock.now_micros(),
                        retries: 0,
                        hedged: 0,
                        copies: Vec::new(),
                        hedge_timer: None,
                        waiters: 0,
                        resolved: None,
                    },
                );
                core.by_prompt.insert(prompt.to_string(), id);
                core.fresh.push(id);
                id
            }
        };
        core.requests.get_mut(&id).expect("request exists").waiters += 1;
        core.parked += 1;
        let result = loop {
            if let Some(resolved) = core.requests.get(&id).and_then(|r| r.resolved.clone()) {
                // The resolver already moved this thread out of `parked`.
                break resolved;
            }
            if core.parked == core.registered.len() {
                self.drive(&mut core);
                continue;
            }
            let (guard, timeout) = self
                .wakeup
                .wait_timeout(core, STALL_ESCAPE)
                .unwrap_or_else(PoisonError::into_inner);
            core = guard;
            if timeout.timed_out()
                && core.parked < core.registered.len()
                && core.requests.get(&id).is_some_and(|r| r.resolved.is_none())
            {
                // Escape valve: a registered peer appears to be blocked
                // outside the dispatcher (mis-wired composition). Drive
                // anyway — answers stay correct, the timeline stops being
                // schedule-independent.
                self.drive(&mut core);
            }
        };
        {
            let req = core.requests.get_mut(&id).expect("request exists");
            req.waiters -= 1;
            if req.waiters == 0 {
                core.requests.remove(&id);
            }
        }
        if transient {
            core.registered.remove(&tid);
            if core.parked > 0 && core.parked == core.registered.len() {
                // Our departure created quiescence for the remaining
                // parked threads; elect a driver among them.
                self.wakeup.notify_all();
            }
        }
        result
    }
}

impl LanguageModel for Dispatcher<'_> {
    fn name(&self) -> &str {
        self.endpoint.model().name()
    }

    fn complete(&self, prompt: &str) -> Result<Arc<Completion>, LlmError> {
        self.complete_inner(prompt)
    }

    fn usage(&self) -> Usage {
        self.endpoint.model().usage()
    }

    fn reset_usage(&self) {
        self.endpoint.model().reset_usage();
    }

    fn context_window(&self) -> usize {
        self.endpoint.model().context_window()
    }

    fn latency_profile(&self) -> LatencyProfile {
        self.endpoint.model().latency_profile()
    }
}

/// RAII guard of a long-lived registration (see [`Dispatcher::register`]).
pub struct DispatchRegistration<'d, 'a> {
    dispatcher: &'d Dispatcher<'a>,
    tid: ThreadId,
    active: bool,
}

impl Drop for DispatchRegistration<'_, '_> {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let mut core = self.dispatcher.lock();
        core.registered.remove(&self.tid);
        if core.parked > 0 && core.parked == core.registered.len() {
            self.dispatcher.wakeup.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendConfig;
    use unidm_llm::{FaultPlan, LlmProfile, MockLlm};
    use unidm_world::World;

    fn model() -> MockLlm {
        MockLlm::new(&World::generate(7), LlmProfile::gpt3_175b(), 7)
    }

    fn pipelined(seed: u64) -> BackendConfig {
        BackendConfig::resilient(seed)
            .without_breaker()
            .with_pipelined()
    }

    #[test]
    fn self_driving_serial_calls_resolve_and_overlap_nothing() {
        let llm = model();
        let dispatcher = Dispatcher::new(&llm, pipelined(1).with_faults(FaultPlan::none(1)));
        let direct = llm.complete("The capital of Denmark is __.").unwrap();
        let reply = dispatcher
            .complete("The capital of Denmark is __.")
            .unwrap();
        assert_eq!(reply, direct);
        // Serial requests cannot overlap: elapsed == the one base latency.
        assert_eq!(dispatcher.clock().now_micros(), 50_000);
        let stats = dispatcher.stats();
        assert_eq!((stats.calls, stats.attempts, stats.failures), (1, 1, 0));
    }

    /// Spawns `n` registered workers that all pass a barrier before
    /// submitting — so every first submission lands in the same reactor
    /// step and the whole timeline is schedule-independent.
    fn fan_out(dispatcher: &Dispatcher<'_>, n: usize, work: impl Fn(usize) + Sync) {
        let barrier = std::sync::Barrier::new(n);
        std::thread::scope(|scope| {
            for t in 0..n {
                let (d, b, work) = (dispatcher, &barrier, &work);
                scope.spawn(move || {
                    let _reg = d.register();
                    b.wait();
                    work(t);
                });
            }
        });
    }

    #[test]
    fn overlapped_requests_share_virtual_time() {
        let llm = model();
        let dispatcher = Dispatcher::new(&llm, pipelined(2).with_faults(FaultPlan::none(2)));
        fan_out(&dispatcher, 16, |i| {
            dispatcher
                .complete(&format!("overlapped prompt {i}"))
                .unwrap();
        });
        // 16 concurrent 50ms attempts: the blocking stack would charge
        // 800ms of virtual time; the reactor overlaps them into one wave.
        assert_eq!(dispatcher.clock().now_micros(), 50_000);
        assert_eq!(dispatcher.stats().attempts, 16);
    }

    #[test]
    fn identical_pending_prompts_coalesce_and_memoize() {
        let llm = model();
        let dispatcher = Dispatcher::new(&llm, pipelined(3).with_faults(FaultPlan::none(3)));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let d = &dispatcher;
                scope.spawn(move || {
                    let _reg = d.register();
                    d.complete("the one shared prompt").unwrap();
                });
            }
        });
        // A late arrival after resolution hits the memo.
        dispatcher.complete("the one shared prompt").unwrap();
        let stats = dispatcher.stats();
        assert_eq!(stats.calls, 9);
        assert_eq!(stats.attempts, 1, "one endpoint attempt for nine calls");
        assert_eq!(stats.dispatch_coalesced, 8);
        assert_eq!(dispatcher.fault_stats().unwrap().attempts, 1);
    }

    #[test]
    fn in_flight_budget_defers_admission_without_losing_requests() {
        let llm = model();
        let dispatcher = Dispatcher::new(
            &llm,
            pipelined(4)
                .with_faults(FaultPlan::none(4))
                .with_max_in_flight(2),
        );
        fan_out(&dispatcher, 10, |i| {
            dispatcher
                .complete(&format!("budgeted prompt {i}"))
                .unwrap();
        });
        let stats = dispatcher.stats();
        assert_eq!((stats.calls, stats.attempts, stats.failures), (10, 10, 0));
        // Budget 2 over 10×50ms: the makespan is 5 serial waves.
        assert_eq!(dispatcher.clock().now_micros(), 5 * 50_000);
    }

    #[test]
    fn pacing_grants_are_virtual_not_blocking() {
        let llm = model();
        let dispatcher = Dispatcher::new(
            &llm,
            pipelined(5)
                .with_faults(FaultPlan::none(5))
                .with_rate_limit(10, 1),
        );
        fan_out(&dispatcher, 20, |i| {
            dispatcher.complete(&format!("paced prompt {i}")).unwrap();
        });
        let stats = dispatcher.stats();
        assert_eq!(stats.rate_tokens, 20, "one token per logical attempt");
        assert_eq!(stats.throttle_waits, 19, "everything after the burst waits");
        assert!(
            dispatcher.clock().now_micros() >= 1_900_000,
            "virtual time must cover the token deficit: {}us",
            dispatcher.clock().now_micros()
        );
    }

    #[test]
    fn faulty_attempts_retry_to_the_same_answer() {
        let llm = model();
        let truth = llm.complete("The capital of Denmark is __.").unwrap();
        let dispatcher = Dispatcher::new(&llm, pipelined(9).with_faults(FaultPlan::heavy(9)));
        let reply = dispatcher
            .complete("The capital of Denmark is __.")
            .unwrap();
        assert_eq!(reply, truth);
        let stats = dispatcher.stats();
        assert_eq!(stats.failures, 0);
        assert_eq!(stats.retries, stats.attempts - stats.calls);
    }

    #[test]
    fn permanent_errors_resolve_without_retry_or_memo() {
        let llm = model();
        let dispatcher = Dispatcher::new(&llm, pipelined(1).with_faults(FaultPlan::none(1)));
        assert_eq!(dispatcher.complete("  "), Err(LlmError::EmptyPrompt));
        assert_eq!(dispatcher.complete("  "), Err(LlmError::EmptyPrompt));
        let stats = dispatcher.stats();
        assert_eq!(stats.failures, 2, "errors are not memoized");
        assert_eq!(stats.retries, 0);
    }

    #[test]
    fn hedging_cuts_the_tail_and_accounts_exactly() {
        let llm = model();
        let config = pipelined(11)
            .with_faults(FaultPlan::heavy_tail(11))
            .with_hedge(HedgePolicy::at_quantile(900).with_min_samples(16));
        // 10 workers × 30 sequential prompts: submissions trickle in
        // waves, so the latency estimator warms up and later stragglers
        // get hedged.
        let run = || {
            let dispatcher = Dispatcher::new(&llm, config);
            fan_out(&dispatcher, 10, |t| {
                for i in 0..30 {
                    dispatcher
                        .complete(&format!("tail prompt {t}-{i}"))
                        .unwrap();
                }
            });
            (dispatcher.stats(), dispatcher.fault_stats().unwrap())
        };
        let (stats, faults) = run();
        assert!(stats.hedges_issued > 0, "the 3% tail must trigger hedges");
        assert_eq!(stats.hedges_cancelled, stats.hedges_issued);
        assert_eq!(
            faults.attempts,
            300 + stats.hedges_issued,
            "every endpoint attempt is a unique prompt or an accounted hedge"
        );
        assert_eq!(stats.rate_tokens, 0, "no rate limit configured");
        // Hedged stragglers resolve at ~(hedge delay + base), far below 2s.
        assert!(
            stats.request_latency.quantile_us(990) < 500_000,
            "hedging must cut the observed P99: {:?}",
            stats.request_latency
        );
        // The whole timeline is deterministic: repeat and compare counters.
        let (stats2, faults2) = run();
        assert_eq!(stats, stats2);
        assert_eq!(faults, faults2);
    }

    #[test]
    fn direct_endpoint_derives_latency_from_the_profile() {
        let llm = model();
        let dispatcher = Dispatcher::new(&llm, pipelined(1));
        let reply = dispatcher
            .complete("The capital of Denmark is __.")
            .unwrap();
        let expected = llm.latency_profile().latency_us(reply.usage);
        assert_eq!(dispatcher.clock().now_micros(), expected);
        assert!(dispatcher.fault_stats().is_none());
    }

    #[test]
    fn unregistered_callers_are_transiently_registered_and_safe() {
        let llm = model();
        let dispatcher = Dispatcher::new(&llm, pipelined(6).with_faults(FaultPlan::light(6)));
        // Plain threads, no registration guards: still deadlock-free.
        std::thread::scope(|scope| {
            for t in 0..4 {
                let d = &dispatcher;
                scope.spawn(move || {
                    for i in 0..10 {
                        d.complete(&format!("transient {t}-{i}")).unwrap();
                    }
                });
            }
        });
        let stats = dispatcher.stats();
        assert_eq!(stats.calls, 40);
        assert_eq!(stats.failures, 0);
    }
}
