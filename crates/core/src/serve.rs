//! Open-loop serving simulator with SLO accounting.
//!
//! All other benches in this repo are *closed-loop*: a fixed batch of
//! tasks is pushed through the stack as fast as it will go, and the
//! number reported is makespan. That is the wrong lens for a serving
//! layer — under open-loop load, requests arrive on their own schedule
//! whether or not the backend has caught up, so queueing delay compounds
//! and the p99/p999 tail is what users actually experience.
//!
//! [`ServeSim`] closes that gap without touching a wall clock:
//!
//! * **Arrival processes** ([`ArrivalProcess`]) are sampled with pure
//!   integer micro-time math from a seeded [`Dice`] — exponential gaps
//!   via a Q16 fixed-point `-ln` table, fixed-size bursts, and a
//!   16-segment diurnal curve applied by thinning. No floats anywhere on
//!   the sampling path, so schedules are bit-identical across platforms.
//! * **Multi-tenant mixes** ([`TenantSpec`]) draw prompts from recorded
//!   canonical prompt streams (the eval crate records the ten paper
//!   scenarios' streams), each tenant with its own arrival process, rate
//!   and SLO.
//! * **The event loop** is a single-threaded discrete-event simulation
//!   over the sim's own [`VirtualClock`] + [`TimerWheel`]: an arrival
//!   either seizes a free server or queues FIFO; service time is the
//!   driven stack's *own* virtual-clock delta around the `complete` call
//!   (so retries, hedges, breaker waits and fault injection all count),
//!   falling back to the model's [`LatencyProfile`](unidm_llm::LatencyProfile) for stacks that do
//!   not meter time. Completions at tick `t` are processed before
//!   arrivals at tick `t`, which pins the event order exactly.
//! * **Worker counts don't change results**: the measurement pass is
//!   serial by construction, and the `workers` knob instead drives a
//!   parallel *replay verification* — requests are partitioned by prompt
//!   hash (preserving per-prompt call order), re-issued, and compared
//!   against the measured answers. The report is computed before the
//!   replay runs, so traces and stats are byte-identical at any worker
//!   count; `replay_mismatches` stays 0 for any prompt-deterministic
//!   stack.
//!
//! Reported per tenant: p50/p99/p999 end-to-end latency (via the exact
//! [`LatencySketch`]), SLO attainment, and goodput (SLO-satisfying
//! answers per 1000 virtual seconds) under whatever faults the attached
//! stack injects.
//!
//! # Examples
//!
//! ```
//! use unidm::serve::{ArrivalProcess, ServeConfig, ServeSim, TenantSpec};
//! use unidm::BackendConfig;
//! use unidm_llm::{LlmProfile, MockLlm};
//! use unidm_world::World;
//!
//! let world = World::generate(42);
//! let sim = ServeSim::new(ServeConfig::new(7).with_servers(2)).tenant(
//!     TenantSpec::new(
//!         "docs",
//!         vec!["What is the capital of region 3?".into()],
//!     )
//!     .with_arrival(ArrivalProcess::Poisson)
//!     .with_rate_milli_per_s(2_000)
//!     .with_requests(40)
//!     .with_slo_us(400_000),
//! );
//!
//! let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), 42);
//! let stack = BackendConfig::default().wrap(&llm);
//! let report = sim.run(&stack);
//! assert_eq!(report.requests, 40);
//!
//! // Rerunning against a fresh stack reproduces the trace bit for bit.
//! let fresh = MockLlm::new(&world, LlmProfile::gpt3_175b(), 42);
//! let stack = BackendConfig::default().wrap(&fresh);
//! let rerun = sim.run(&stack);
//! assert_eq!(report, rerun);
//! assert_eq!(report.trace_fnv(), rerun.trace_fnv());
//! ```

use std::collections::{HashMap, VecDeque};

use unidm_llm::{Dice, LanguageModel, TimerWheel, VirtualClock};

use crate::backend::{AttachedBackend, LatencySketch};

/// `ln 2` in Q16 fixed point.
const LN2_Q16: u64 = 45_426;

/// `ln(1 + k/16) * 2^16` for `k = 0..=16`; the mantissa table for the
/// fixed-point natural log. The last entry is [`LN2_Q16`].
const LN_MANTISSA_Q16: [u64; 17] = [
    0, 3_973, 7_719, 11_262, 14_624, 17_822, 20_870, 23_784, 26_573, 29_248, 31_818, 34_292,
    36_675, 38_975, 41_196, 43_345, 45_426,
];

/// Per-segment load as a permille of peak rate over one diurnal period:
/// a quiet night, a morning ramp, a midday peak and an evening falloff.
/// Sums to 8000 over 16 segments, so the *average* rate is exactly half
/// the peak — which is why diurnal sampling thins candidates drawn at
/// `2x` the requested average rate.
const DIURNAL_PERMILLE_OF_PEAK: [u64; 16] = [
    120, 80, 60, 80, 150, 300, 520, 730, 880, 960, 1000, 950, 850, 700, 480, 140,
];

/// Gap between requests inside one burst of [`ArrivalProcess::Bursty`].
const INTRA_BURST_GAP_US: u64 = 1_000;

/// Service-time floor: a completion can never take zero virtual time.
const MIN_SERVICE_US: u64 = 1;

/// Assumed service time for an error returned by a stack that does not
/// meter virtual time (no retries, no backoff — a plain refusal).
const UNMETERED_ERROR_SERVICE_US: u64 = 20_000;

/// `-ln(r / 2^16)` in Q16 fixed point, for `r` in `1..=2^16`.
///
/// Exact at the table knots and piecewise-linear between them; the
/// relative error is far below what any latency assertion can see, and —
/// unlike `f64::ln` — the result is bit-identical on every platform.
fn neg_ln_q16(r: u32) -> u64 {
    let r = u64::from(r.clamp(1, 1 << 16));
    let e = 63 - r.leading_zeros() as u64; // floor(log2 r)
    let frac = ((r << 16) >> e) - (1 << 16); // r / 2^e - 1, Q16 in [0, 1)
    let idx = (frac >> 12) as usize; // 16 segments over [0, 1)
    let t = frac & 0xFFF; // position inside the segment, Q12
    let lo = LN_MANTISSA_Q16[idx];
    let hi = LN_MANTISSA_Q16[idx + 1];
    let ln_r = e * LN2_Q16 + lo + (((hi - lo) * t) >> 12);
    (16 * LN2_Q16).saturating_sub(ln_r)
}

/// An exponentially distributed gap with the given mean, driven by a
/// uniform draw `r` in `1..=2^16`. Inverse-CDF sampling: the gap is
/// `mean * -ln(r / 2^16)`, floored at one microsecond so virtual time
/// always advances.
fn exp_gap_us(mean_us: u64, r: u32) -> u64 {
    let gap = (u128::from(mean_us) * u128::from(neg_ln_q16(r))) >> 16;
    (gap as u64).max(1)
}

/// SLO attainment as a permille of all requests (0 when empty).
fn attainment_permille(slo_met: u64, requests: u64) -> u64 {
    (slo_met * 1000).checked_div(requests).unwrap_or(0)
}

/// SLO-satisfying answers per 1000 virtual seconds (0 for an empty run).
fn goodput_per_ks(slo_met: u64, makespan_us: u64) -> u64 {
    (u128::from(slo_met) * 1_000_000_000)
        .checked_div(u128::from(makespan_us))
        .unwrap_or(0) as u64
}

/// 64-bit FNV-1a, the digest used for [`ServeReport::trace_fnv`].
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// How a tenant's requests arrive in virtual time.
///
/// All three processes are sampled with integer micro-time math from the
/// simulation's seeded [`Dice`] — no floats, no wall clock — so a fixed
/// seed pins the full arrival schedule bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals: independent exponential inter-arrival gaps
    /// at the tenant's average rate.
    Poisson,
    /// Requests arrive in fixed-size bursts: inside a burst they are
    /// spaced a fixed 1ms apart, and bursts themselves arrive
    /// with exponential gaps scaled so the *average* rate matches the
    /// tenant's configured rate.
    Bursty {
        /// Requests per burst (clamped to at least 1).
        burst: u32,
    },
    /// Day/night load: candidates are drawn at twice the average rate
    /// and thinned through a 16-segment permille-of-peak
    /// curve, producing a quiet trough and a peak around "midday" of
    /// each virtual period.
    Diurnal {
        /// Virtual length of one day, in microseconds.
        period_us: u64,
    },
}

/// One tenant of the serving mix: a named prompt stream plus an arrival
/// process, average rate, request count and latency SLO.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSpec {
    name: String,
    prompts: Vec<String>,
    arrival: ArrivalProcess,
    rate_milli_per_s: u64,
    requests: u32,
    slo_us: u64,
}

impl TenantSpec {
    /// A tenant drawing uniformly (seeded) from `prompts`, defaulting to
    /// Poisson arrivals at 10 requests per virtual second, 100 requests,
    /// and a 1-second latency SLO.
    pub fn new(name: impl Into<String>, prompts: Vec<String>) -> Self {
        TenantSpec {
            name: name.into(),
            prompts,
            arrival: ArrivalProcess::Poisson,
            rate_milli_per_s: 10_000,
            requests: 100,
            slo_us: 1_000_000,
        }
    }

    /// Sets the arrival process.
    pub fn with_arrival(mut self, arrival: ArrivalProcess) -> Self {
        self.arrival = arrival;
        self
    }

    /// Sets the average arrival rate in milli-requests per virtual
    /// second (so `2_500` is 2.5 requests/s); clamped to at least 1.
    pub fn with_rate_milli_per_s(mut self, rate_milli_per_s: u64) -> Self {
        self.rate_milli_per_s = rate_milli_per_s.max(1);
        self
    }

    /// Sets how many requests this tenant injects over the run.
    pub fn with_requests(mut self, requests: u32) -> Self {
        self.requests = requests;
        self
    }

    /// Sets the end-to-end latency SLO in virtual microseconds.
    pub fn with_slo_us(mut self, slo_us: u64) -> Self {
        self.slo_us = slo_us;
        self
    }

    /// The tenant's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Mean inter-arrival gap implied by the configured rate.
    fn mean_gap_us(&self) -> u64 {
        (1_000_000_000 / self.rate_milli_per_s.max(1)).max(1)
    }

    /// Samples this tenant's full arrival schedule: `(arrival_us,
    /// prompt_index)` pairs, strictly increasing in time.
    fn sample_arrivals(&self, dice: &Dice) -> Vec<(u64, usize)> {
        let ctx = format!("serve-{}", self.name);
        let mean = self.mean_gap_us();
        let mut schedule = Vec::with_capacity(self.requests as usize);
        let mut at_us = 0u64;
        let mut draws = 0u64;
        let draw = |tag: &str, n: usize, draws: &mut u64| {
            let tagged = format!("{tag}-{draws}");
            *draws += 1;
            dice.pick(&ctx, &tagged, n)
        };
        for i in 0..self.requests as usize {
            match self.arrival {
                ArrivalProcess::Poisson => {
                    let r = draw("gap", 1 << 16, &mut draws) as u32 + 1;
                    at_us += exp_gap_us(mean, r);
                }
                ArrivalProcess::Bursty { burst } => {
                    let burst = burst.max(1) as usize;
                    if i % burst == 0 {
                        let r = draw("gap", 1 << 16, &mut draws) as u32 + 1;
                        at_us += exp_gap_us(mean.saturating_mul(burst as u64), r);
                    } else {
                        at_us += INTRA_BURST_GAP_US;
                    }
                }
                ArrivalProcess::Diurnal { period_us } => {
                    let period = period_us.max(16);
                    // Candidates at 2x the average rate, thinned by the
                    // curve (which averages 500 permille of peak).
                    loop {
                        let r = draw("gap", 1 << 16, &mut draws) as u32 + 1;
                        at_us += exp_gap_us((mean / 2).max(1), r);
                        let segment = ((at_us % period) * 16 / period) as usize;
                        let keep = draw("keep", 1000, &mut draws) as u64;
                        if keep < DIURNAL_PERMILLE_OF_PEAK[segment] {
                            break;
                        }
                    }
                }
            }
            let prompt = if self.prompts.is_empty() {
                0
            } else {
                dice.pick(&ctx, &format!("prompt-{i}"), self.prompts.len())
            };
            schedule.push((at_us, prompt));
        }
        schedule
    }
}

/// Global knobs of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    seed: u64,
    servers: u32,
    workers: usize,
}

impl ServeConfig {
    /// A single-server, single-worker simulation at the given seed.
    pub fn new(seed: u64) -> Self {
        ServeConfig {
            seed,
            servers: 1,
            workers: 1,
        }
    }

    /// Sets how many requests the driven stack serves concurrently
    /// (clamped to at least 1). Arrivals beyond this queue FIFO.
    pub fn with_servers(mut self, servers: u32) -> Self {
        self.servers = servers.max(1);
        self
    }

    /// Sets the replay-verification worker count (clamped to at least
    /// 1). Worker count never changes the report — that is the point —
    /// it only parallelizes the post-hoc answer re-check.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }
}

/// What happened at one instant of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The request entered the system (and queued, or seized a server).
    Arrival,
    /// The request began service on a free server.
    Start,
    /// The request finished service.
    Done {
        /// Whether the stack returned an answer (as opposed to an error).
        ok: bool,
    },
}

/// One entry of the simulation's event trace, totally ordered by
/// occurrence: the trace is the simulator's determinism contract, and
/// [`ServeReport::trace_fnv`] digests it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeEvent {
    /// Virtual timestamp, microseconds.
    pub at_us: u64,
    /// Index of the tenant in the simulation's tenant list.
    pub tenant: u32,
    /// Per-tenant request sequence number, in arrival order.
    pub seq: u32,
    /// What happened.
    pub kind: EventKind,
}

/// Per-tenant outcome of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantReport {
    /// Tenant name, copied from the spec.
    pub name: String,
    /// Requests injected.
    pub requests: u64,
    /// Requests answered successfully.
    pub ok: u64,
    /// Requests that came back as errors (faults the stack did not
    /// absorb).
    pub errors: u64,
    /// The tenant's latency SLO, µs.
    pub slo_us: u64,
    /// Successful requests whose end-to-end latency met the SLO.
    pub slo_met: u64,
    /// `slo_met * 1000 / requests` — errors count against attainment.
    pub attainment_permille: u64,
    /// SLO-satisfying answers per 1000 virtual seconds of makespan.
    pub goodput_per_ks: u64,
    /// End-to-end latency distribution (queueing + service).
    pub latency: LatencySketch,
}

/// The full result of one [`ServeSim::run`]: per-tenant stats, global
/// counters, and the event trace.
///
/// Two reports from the same sim at the same seed against identically
/// constructed stacks compare equal — including across worker counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeReport {
    /// Per-tenant outcomes, in tenant declaration order.
    pub tenants: Vec<TenantReport>,
    /// Total requests injected.
    pub requests: u64,
    /// Total requests that came back as errors.
    pub errors: u64,
    /// Total requests that met their tenant's SLO.
    pub slo_met: u64,
    /// Virtual time from the first arrival draw to the last completion.
    pub makespan_us: u64,
    /// Replay answers that disagreed with the measured answers; 0 for
    /// any prompt-deterministic stack.
    pub replay_mismatches: u64,
    /// The full event trace, in processing order.
    pub trace: Vec<ServeEvent>,
}

impl ServeReport {
    /// FNV-1a digest of the event trace — the cheap handle for "these
    /// two runs were bit-identical".
    pub fn trace_fnv(&self) -> u64 {
        let mut bytes = Vec::with_capacity(self.trace.len() * 18);
        for event in &self.trace {
            bytes.extend_from_slice(&event.at_us.to_le_bytes());
            bytes.extend_from_slice(&event.tenant.to_le_bytes());
            bytes.extend_from_slice(&event.seq.to_le_bytes());
            let kind = match event.kind {
                EventKind::Arrival => 0u8,
                EventKind::Start => 1,
                EventKind::Done { ok: true } => 2,
                EventKind::Done { ok: false } => 3,
            };
            bytes.push(kind);
        }
        fnv1a64(&bytes)
    }

    /// Overall SLO attainment, permille of all requests.
    pub fn attainment_permille(&self) -> u64 {
        attainment_permille(self.slo_met, self.requests)
    }

    /// Overall goodput: SLO-satisfying answers per 1000 virtual seconds.
    pub fn goodput_per_ks(&self) -> u64 {
        goodput_per_ks(self.slo_met, self.makespan_us)
    }
}

/// One fully sampled request, ready for the event loop.
struct Request {
    tenant: u32,
    seq: u32,
    at_us: u64,
    prompt_index: usize,
}

/// Measured outcome of one request.
#[derive(Clone, Default)]
struct Outcome {
    ok: bool,
    answer: Option<String>,
    done_us: u64,
}

/// The open-loop serving simulator. See the [module docs](self) for the
/// full protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeSim {
    config: ServeConfig,
    tenants: Vec<TenantSpec>,
}

impl ServeSim {
    /// An empty simulation with the given knobs; add tenants with
    /// [`ServeSim::tenant`].
    pub fn new(config: ServeConfig) -> Self {
        ServeSim {
            config,
            tenants: Vec::new(),
        }
    }

    /// Adds a tenant to the mix.
    #[must_use]
    pub fn tenant(mut self, spec: TenantSpec) -> Self {
        self.tenants.push(spec);
        self
    }

    /// The configured tenants, in declaration order.
    pub fn tenants(&self) -> &[TenantSpec] {
        &self.tenants
    }

    /// Samples every tenant's arrival schedule and merges them into one
    /// globally ordered request list. Ties break by tenant declaration
    /// order, then per-tenant sequence — fully deterministic.
    fn sample_requests(&self, dice: &Dice) -> Vec<Request> {
        let mut requests = Vec::new();
        for (tenant_index, tenant) in self.tenants.iter().enumerate() {
            for (seq, (at_us, prompt_index)) in tenant.sample_arrivals(dice).into_iter().enumerate()
            {
                requests.push(Request {
                    tenant: tenant_index as u32,
                    seq: seq as u32,
                    at_us,
                    prompt_index,
                });
            }
        }
        requests.sort_by_key(|r| (r.at_us, r.tenant, r.seq));
        requests
    }

    /// Runs the open-loop simulation against `stack` and returns the
    /// report. The stack is driven serially in event order; see the
    /// module docs for why `workers` cannot change the result.
    pub fn run(&self, stack: &AttachedBackend<'_>) -> ServeReport {
        let dice = Dice::new(self.config.seed);
        let requests = self.sample_requests(&dice);
        let model = stack.model();

        let clock = VirtualClock::new();
        let mut wheel = TimerWheel::new();
        // TimerWheel sequence number -> request index, for completions.
        let mut in_service: HashMap<u64, usize> = HashMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut free_servers = self.config.servers;
        let mut trace: Vec<ServeEvent> = Vec::with_capacity(requests.len() * 3);
        let mut outcomes: Vec<Outcome> = vec![Outcome::default(); requests.len()];

        // Begins service for request `index` at virtual `now_us`: issues
        // the (blocking, serial) completion, measures its virtual-time
        // cost, and schedules the completion event.
        let start_service = |index: usize,
                             now_us: u64,
                             wheel: &mut TimerWheel,
                             in_service: &mut HashMap<u64, usize>,
                             trace: &mut Vec<ServeEvent>,
                             outcomes: &mut Vec<Outcome>| {
            let request = &requests[index];
            trace.push(ServeEvent {
                at_us: now_us,
                tenant: request.tenant,
                seq: request.seq,
                kind: EventKind::Start,
            });
            let tenant = &self.tenants[request.tenant as usize];
            let prompt = tenant
                .prompts
                .get(request.prompt_index)
                .map(String::as_str)
                .unwrap_or("");
            let before_us = stack.elapsed_us();
            let result = model.complete(prompt);
            let metered_us = stack.elapsed_us().saturating_sub(before_us);
            let service_us = match &result {
                _ if metered_us > 0 => metered_us,
                Ok(completion) => model.latency_profile().latency_us(completion.usage),
                Err(_) => UNMETERED_ERROR_SERVICE_US,
            }
            .max(MIN_SERVICE_US);
            match result {
                Ok(completion) => {
                    outcomes[index].ok = true;
                    outcomes[index].answer = Some(completion.text.clone());
                }
                Err(_) => outcomes[index].ok = false,
            }
            let wheel_seq = wheel.schedule(now_us + service_us);
            in_service.insert(wheel_seq, index);
        };

        let mut next_arrival = 0usize;
        loop {
            let arrival_at = requests.get(next_arrival).map(|r| r.at_us);
            let completion_at = wheel.next_deadline();
            // Completions at tick t are processed before arrivals at
            // tick t: a freed server is visible to a same-tick arrival.
            let take_completion = match (arrival_at, completion_at) {
                (None, None) => break,
                (Some(_), None) => false,
                (None, Some(_)) => true,
                (Some(a), Some(c)) => c <= a,
            };
            if take_completion {
                let (deadline_us, wheel_seq) = wheel.pop_next().expect("deadline was pending");
                clock.advance_to_micros(deadline_us);
                let index = in_service
                    .remove(&wheel_seq)
                    .expect("completion was in service");
                let request = &requests[index];
                outcomes[index].done_us = deadline_us;
                trace.push(ServeEvent {
                    at_us: deadline_us,
                    tenant: request.tenant,
                    seq: request.seq,
                    kind: EventKind::Done {
                        ok: outcomes[index].ok,
                    },
                });
                if let Some(next) = queue.pop_front() {
                    start_service(
                        next,
                        deadline_us,
                        &mut wheel,
                        &mut in_service,
                        &mut trace,
                        &mut outcomes,
                    );
                } else {
                    free_servers += 1;
                }
            } else {
                let index = next_arrival;
                next_arrival += 1;
                let request = &requests[index];
                clock.advance_to_micros(request.at_us);
                trace.push(ServeEvent {
                    at_us: request.at_us,
                    tenant: request.tenant,
                    seq: request.seq,
                    kind: EventKind::Arrival,
                });
                if free_servers > 0 {
                    free_servers -= 1;
                    start_service(
                        index,
                        request.at_us,
                        &mut wheel,
                        &mut in_service,
                        &mut trace,
                        &mut outcomes,
                    );
                } else {
                    queue.push_back(index);
                }
            }
        }

        let makespan_us = clock.elapsed_micros();
        let mut tenants: Vec<TenantReport> = self
            .tenants
            .iter()
            .map(|t| TenantReport {
                name: t.name.clone(),
                requests: 0,
                ok: 0,
                errors: 0,
                slo_us: t.slo_us,
                slo_met: 0,
                attainment_permille: 0,
                goodput_per_ks: 0,
                latency: LatencySketch::default(),
            })
            .collect();
        for (request, outcome) in requests.iter().zip(&outcomes) {
            let report = &mut tenants[request.tenant as usize];
            report.requests += 1;
            let latency_us = outcome.done_us.saturating_sub(request.at_us);
            report.latency.record(latency_us);
            if outcome.ok {
                report.ok += 1;
                if latency_us <= report.slo_us {
                    report.slo_met += 1;
                }
            } else {
                report.errors += 1;
            }
        }
        for report in &mut tenants {
            report.attainment_permille = attainment_permille(report.slo_met, report.requests);
            report.goodput_per_ks = goodput_per_ks(report.slo_met, makespan_us);
        }

        // The report is complete before the replay runs: worker count
        // can only affect `replay_mismatches`, and per-prompt call order
        // is preserved by the hash partition, so even that is stable.
        let replay_mismatches = self.replay(model, &requests, &outcomes);

        ServeReport {
            requests: requests.len() as u64,
            errors: tenants.iter().map(|t| t.errors).sum(),
            slo_met: tenants.iter().map(|t| t.slo_met).sum(),
            makespan_us,
            replay_mismatches,
            trace,
            tenants,
        }
    }

    /// Re-issues every successfully answered prompt and counts answers
    /// that differ from the measured run. Requests are partitioned
    /// across `workers` threads by prompt hash, so all requests for one
    /// prompt replay on one thread in original order — the partition is
    /// schedule-independent by construction.
    fn replay(&self, model: &dyn LanguageModel, requests: &[Request], outcomes: &[Outcome]) -> u64 {
        if requests.is_empty() {
            return 0;
        }
        let workers = self.config.workers.max(1) as u64;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|worker| {
                    scope.spawn(move || {
                        let mut mismatches = 0u64;
                        for (request, outcome) in requests.iter().zip(outcomes) {
                            let tenant = &self.tenants[request.tenant as usize];
                            let prompt = tenant
                                .prompts
                                .get(request.prompt_index)
                                .map(String::as_str)
                                .unwrap_or("");
                            if fnv1a64(prompt.as_bytes()) % workers != worker {
                                continue;
                            }
                            let Some(expected) = &outcome.answer else {
                                continue;
                            };
                            if let Ok(got) = model.complete(prompt) {
                                if got.text != *expected {
                                    mismatches += 1;
                                }
                            }
                        }
                        mismatches
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("replay worker panicked"))
                .sum()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendConfig;
    use std::sync::Arc;
    use unidm_llm::{Completion, LatencyProfile, LlmError, LlmProfile, Usage};
    use unidm_world::World;

    /// A prompt-pure model with a constant, profile-driven latency.
    struct StubModel {
        latency: LatencyProfile,
    }

    impl StubModel {
        fn instant() -> Self {
            StubModel {
                latency: LatencyProfile {
                    base_us: 10_000,
                    per_prompt_token_us: 0,
                    per_completion_token_us: 0,
                },
            }
        }
    }

    impl LanguageModel for StubModel {
        fn name(&self) -> &str {
            "stub"
        }

        fn complete(&self, prompt: &str) -> Result<Arc<Completion>, LlmError> {
            Ok(Completion::shared(
                format!("echo {prompt}"),
                Usage {
                    prompt_tokens: 3,
                    completion_tokens: 2,
                },
            ))
        }

        fn usage(&self) -> Usage {
            Usage::default()
        }

        fn reset_usage(&self) {}

        fn latency_profile(&self) -> LatencyProfile {
            self.latency
        }
    }

    fn prompts() -> Vec<String> {
        (0..8).map(|i| format!("prompt number {i}")).collect()
    }

    #[test]
    fn neg_ln_fixed_point_tracks_the_real_log() {
        // Exact at both ends of the domain...
        assert_eq!(neg_ln_q16(1 << 16), 0, "-ln(1) = 0");
        assert_eq!(neg_ln_q16(1), 16 * LN2_Q16, "-ln(2^-16) = 16 ln 2");
        // ...and within interpolation error everywhere else (floats are
        // fine in a test oracle — the production path never touches them).
        for r in [2u32, 7, 100, 1_000, 9_999, 32_768, 50_000, 65_535] {
            let exact = -(f64::from(r) / 65_536.0).ln();
            let approx = neg_ln_q16(r) as f64 / 65_536.0;
            assert!(
                (exact - approx).abs() < 0.002,
                "r={r}: exact {exact} vs fixed-point {approx}"
            );
        }
    }

    #[test]
    fn arrival_schedules_are_deterministic_and_monotone() {
        let dice = Dice::new(99);
        for arrival in [
            ArrivalProcess::Poisson,
            ArrivalProcess::Bursty { burst: 5 },
            ArrivalProcess::Diurnal {
                period_us: 3_000_000,
            },
        ] {
            let spec = TenantSpec::new("t", prompts())
                .with_arrival(arrival)
                .with_rate_milli_per_s(5_000)
                .with_requests(200);
            let a = spec.sample_arrivals(&dice);
            let b = spec.sample_arrivals(&dice);
            assert_eq!(a, b, "{arrival:?}: same dice, same schedule");
            assert_eq!(a.len(), 200);
            for pair in a.windows(2) {
                assert!(pair[0].0 < pair[1].0, "{arrival:?}: time must advance");
            }
        }
    }

    #[test]
    fn poisson_mean_gap_lands_near_the_configured_rate() {
        let dice = Dice::new(4);
        let spec = TenantSpec::new("rate", prompts())
            .with_rate_milli_per_s(10_000) // 10/s -> mean gap 100ms
            .with_requests(2_000);
        let schedule = spec.sample_arrivals(&dice);
        let span_us = schedule.last().unwrap().0;
        let mean_gap = span_us / 2_000;
        assert!(
            (70_000..130_000).contains(&mean_gap),
            "mean gap {mean_gap}us should be near 100ms"
        );
    }

    #[test]
    fn open_loop_queueing_shows_up_in_the_tail() {
        // 200 req/s against a 10ms service time: one server is 2x
        // overloaded and the queue (hence latency) grows without bound;
        // four servers are 2x overprovisioned and latency stays near
        // service time.
        let sim = |servers| {
            let stub = StubModel::instant();
            let stack = BackendConfig::default().wrap(&stub);
            ServeSim::new(ServeConfig::new(11).with_servers(servers))
                .tenant(
                    TenantSpec::new("load", prompts())
                        .with_rate_milli_per_s(200_000)
                        .with_requests(400)
                        .with_slo_us(50_000),
                )
                .run(&stack)
        };
        let overloaded = sim(1);
        let provisioned = sim(4);
        let p99_over = overloaded.tenants[0].latency.quantile_us(990);
        let p99_prov = provisioned.tenants[0].latency.quantile_us(990);
        assert!(
            p99_over > 10 * p99_prov,
            "overload tail {p99_over}us should dwarf provisioned tail {p99_prov}us"
        );
        assert!(
            overloaded.slo_met < provisioned.slo_met,
            "overload must cost SLO attainment: {} vs {}",
            overloaded.slo_met,
            provisioned.slo_met
        );
        assert_eq!(provisioned.tenants[0].attainment_permille, 1000);
        assert_eq!(overloaded.replay_mismatches, 0);
    }

    #[test]
    fn reports_are_bit_identical_across_workers_and_reruns() {
        let world = World::generate(21);
        let run = |workers| {
            let llm = unidm_llm::MockLlm::new(&world, LlmProfile::gpt3_175b(), 21);
            let stack = BackendConfig::resilient(21)
                .with_faults(unidm_llm::FaultPlan::moderate(7))
                .wrap(&llm);
            ServeSim::new(ServeConfig::new(5).with_servers(3).with_workers(workers))
                .tenant(
                    TenantSpec::new("poisson", prompts())
                        .with_rate_milli_per_s(20_000)
                        .with_requests(120),
                )
                .tenant(
                    TenantSpec::new("bursty", prompts())
                        .with_arrival(ArrivalProcess::Bursty { burst: 8 })
                        .with_rate_milli_per_s(10_000)
                        .with_requests(80),
                )
                .run(&stack)
        };
        let serial = run(1);
        let parallel = run(8);
        let rerun = run(8);
        assert_eq!(serial, parallel, "worker count must not change the report");
        assert_eq!(parallel, rerun, "rerun at the same seed must reproduce");
        assert_eq!(serial.trace_fnv(), parallel.trace_fnv());
        assert_eq!(serial.requests, 200);
        assert!(!serial.trace.is_empty());
    }
}
