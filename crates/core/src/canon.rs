//! Prompt canonicalization: the cache-key layer of the prompting subsystem.
//!
//! The paper's pipeline prompts are highly redundant across the rows of one
//! table — every imputation run renders the same `p_rm` preamble, the same
//! `p_cq` demonstration block, and near-identical `p_dp` record lists — but
//! a verbatim prompt → completion memo only deduplicates byte-identical
//! strings. On the imputation workload that yields ~2% hit rates, because
//! the meta-wise retrieval prompt embeds the per-row target key even though
//! the model's answer ("which attributes help?") is a property of the
//! *table*, not the row.
//!
//! [`PromptKey::canonicalize`] closes that gap. It normalizes whitespace
//! and splits each recognized prompt into a reusable **table-level stem**
//! (retrieval preambles, demonstration blocks, parsing instructions) plus a
//! **per-row suffix** (the target query, the claim, the record list). At
//! [`CanonLevel::TableStem`] it additionally rewrites the per-row part of
//! retrieval queries to their table-level form (`"Copenhagen, timezone"` →
//! `"*, timezone"`), so every row of a table shares one `p_rm` cache entry.
//!
//! Correctness under canonicalization is preserved by construction: the
//! cache completes the *canonical* prompt text on a miss (never the raw
//! variant), so the memo is a pure function of the canonical key.
//! Whichever thread populates an entry, the stored completion is identical
//! — serial and parallel batches stay bit-for-bit equal.
//!
//! # Examples
//!
//! Two rows of the same table fold to one key at table-stem level:
//!
//! ```
//! use unidm::{CanonLevel, PromptKey};
//! use unidm_llm::protocol::{render_prm, TaskKind};
//!
//! let candidates = vec!["country".to_string(), "population".to_string()];
//! let row_a = render_prm(TaskKind::Imputation, "Copenhagen, timezone", &candidates);
//! let row_b = render_prm(TaskKind::Imputation, "Florence, timezone", &candidates);
//! assert_ne!(row_a, row_b, "verbatim prompts differ per row");
//!
//! let key_a = PromptKey::canonicalize(&row_a, CanonLevel::TableStem);
//! let key_b = PromptKey::canonicalize(&row_b, CanonLevel::TableStem);
//! assert_eq!(key_a, key_b, "canonical keys fold the per-row target key");
//! assert_eq!(key_a.suffix(), "*, timezone");
//! ```

use unidm_llm::protocol::{parse_prm, render_prm, TaskKind};

/// How aggressively [`PromptKey::canonicalize`] normalizes a prompt before
/// it is used as a cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CanonLevel {
    /// The key is the verbatim prompt: byte-identical prompts share an
    /// entry, nothing else. This is exact memoization — cached and
    /// uncached execution are indistinguishable down to token counts.
    #[default]
    Verbatim,
    /// Whitespace is normalized (runs of blanks collapse, line edges trim)
    /// and the prompt is split into stem + suffix, but no per-row content
    /// is rewritten. Prompts differing only in insignificant whitespace
    /// share an entry.
    Whitespace,
    /// Everything `Whitespace` does, plus per-row retrieval queries are
    /// rewritten to their table-level form: the `p_rm` query of an
    /// imputation run drops its row key, and an error-detection query
    /// drops its cell value. All rows of a table then share the same
    /// meta-retrieval entry, which is what lifts imputation hit rates
    /// from ~2% to ≥20%.
    TableStem,
}

impl CanonLevel {
    /// Short lowercase name, used in logs and bench output.
    pub fn as_str(&self) -> &'static str {
        match self {
            CanonLevel::Verbatim => "verbatim",
            CanonLevel::Whitespace => "whitespace",
            CanonLevel::TableStem => "table-stem",
        }
    }
}

impl std::fmt::Display for CanonLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A canonical cache key: a reusable stem, a per-row suffix, and the splice
/// point where the suffix sits inside the stem.
///
/// The canonical prompt text — what the cache actually sends to the model
/// on a miss — is reconstructed by [`PromptKey::text`]: the suffix inserted
/// into the stem at the splice offset. For most prompt shapes the suffix
/// trails the stem; for `p_rm` it is the query spliced into the middle of
/// the preamble.
///
/// # Examples
///
/// The `p_cq` demonstration block (several hundred tokens, identical in
/// every cloze-construction prompt) lands in the stem; only the final claim
/// is per-row:
///
/// ```
/// use unidm::{CanonLevel, PromptKey};
/// use unidm_llm::protocol::{render_pcq, Claim, TaskKind};
///
/// let claim = Claim {
///     task: TaskKind::Imputation,
///     context: "Florence belongs to the country Italy.".into(),
///     query: "city: Copenhagen; country: ?".into(),
/// };
/// let prompt = render_pcq(&claim);
/// let key = PromptKey::canonicalize(&prompt, CanonLevel::Whitespace);
/// assert!(key.stem().contains("Punch! Home Design"), "demos in the stem");
/// assert!(key.suffix().contains("Copenhagen"), "claim in the suffix");
/// assert_eq!(key.text(), prompt, "text reconstructs the prompt");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PromptKey {
    stem: String,
    suffix: String,
    splice: usize,
}

impl PromptKey {
    /// Canonicalizes `prompt` at the given level.
    ///
    /// At [`CanonLevel::Verbatim`] the key is the prompt itself (empty
    /// stem). At higher levels whitespace is normalized, recognized prompt
    /// shapes (`p_rm`, `p_ri`, `p_dp`, `p_cq`) are split into stem +
    /// suffix, and — at [`CanonLevel::TableStem`] — retrieval queries are
    /// generalized to their table-level form.
    ///
    /// Canonicalization is idempotent: canonicalizing [`PromptKey::text`]
    /// again at the same level yields an equal key.
    pub fn canonicalize(prompt: &str, level: CanonLevel) -> PromptKey {
        if level == CanonLevel::Verbatim {
            return PromptKey::whole(prompt.to_string());
        }
        let norm = normalize_whitespace(prompt);
        // p_rm — re-render around the (possibly generalized) query so the
        // key is independent of how the original prompt was spaced.
        if let Some(req) = parse_prm(&norm) {
            let query = if level == CanonLevel::TableStem {
                generalize_query(req.task, &req.query)
            } else {
                req.query.clone()
            };
            let rendered = render_prm(req.task, &query, &req.candidates);
            if let Some(pos) = rendered.find(QUERY_MARKER) {
                let splice = pos + QUERY_MARKER.len();
                let mut stem = rendered;
                let end = splice + query.len();
                stem.replace_range(splice..end, "");
                return PromptKey {
                    stem,
                    suffix: query,
                    splice,
                };
            }
        }
        // p_ri — the task header is the stem; query and candidate
        // instances are per-row.
        if norm.contains("Score the relevance") {
            if let Some(pos) = norm.find("The target query is") {
                return PromptKey::split_at(norm, pos);
            }
        }
        // p_cq — instruction and demonstration block are the stem; the
        // final claim is per-row.
        if norm.starts_with("Write the claim as a cloze question.") {
            if let Some(pos) = norm.rfind("\nClaim:") {
                return PromptKey::split_at(norm, pos);
            }
        }
        // p_dp — the parsing instruction is the stem; the bracketed record
        // block is per-retrieval.
        if let Some(pos) = norm.find(PDP_MARKER) {
            if norm.ends_with(']') {
                let splice = pos + PDP_MARKER.len();
                let suffix = norm[splice..norm.len() - 1].to_string();
                let mut stem = String::with_capacity(splice + 1);
                stem.push_str(&norm[..splice]);
                stem.push(']');
                return PromptKey {
                    stem,
                    suffix,
                    splice,
                };
            }
        }
        // Target prompts (cloze questions, flat claims) and anything
        // unrecognized: wholly per-row.
        PromptKey::whole(norm)
    }

    fn whole(text: String) -> PromptKey {
        PromptKey {
            stem: String::new(),
            suffix: text,
            splice: 0,
        }
    }

    fn split_at(text: String, pos: usize) -> PromptKey {
        let suffix = text[pos..].to_string();
        let mut stem = text;
        stem.truncate(pos);
        PromptKey {
            stem,
            suffix,
            splice: pos,
        }
    }

    /// The reusable (table-level) part of the key.
    pub fn stem(&self) -> &str {
        &self.stem
    }

    /// The per-row part of the key.
    pub fn suffix(&self) -> &str {
        &self.suffix
    }

    /// The canonical prompt text: the suffix spliced into the stem. This
    /// is the string a canonicalizing cache completes on a miss.
    pub fn text(&self) -> String {
        let mut out = String::with_capacity(self.stem.len() + self.suffix.len());
        out.push_str(&self.stem[..self.splice]);
        out.push_str(&self.suffix);
        out.push_str(&self.stem[self.splice..]);
        out
    }

    /// A stable 64-bit FNV-1a hash of the key, used for shard selection.
    ///
    /// Stable across runs and platforms (it hashes bytes, not `Hasher`
    /// state), so persisted snapshots reload into the same shards.
    pub fn hash64(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(self.stem.as_bytes());
        eat(&[0xff]);
        eat(&(self.splice as u64).to_le_bytes());
        eat(&[0xff]);
        eat(self.suffix.as_bytes());
        h
    }
}

const QUERY_MARKER: &str = "The target query is [";
const PDP_MARKER: &str = "logical order: [";

/// Collapses runs of blanks, trims line edges and the prompt's ends, and
/// normalizes line endings to `\n`.
fn normalize_whitespace(prompt: &str) -> String {
    let mut out = String::with_capacity(prompt.len());
    for line in prompt.lines() {
        let mut pending_space = false;
        let start = out.len();
        for ch in line.chars() {
            if ch == ' ' || ch == '\t' {
                pending_space = out.len() > start;
                continue;
            }
            if pending_space {
                out.push(' ');
                pending_space = false;
            }
            out.push(ch);
        }
        out.push('\n');
    }
    while out.ends_with('\n') {
        out.pop();
    }
    let trimmed_start = out.trim_start_matches('\n').len();
    out.split_off(out.len() - trimmed_start)
}

/// Rewrites a per-row retrieval query to its table-level form.
///
/// Meta-wise retrieval asks which attributes help a *task* — the answer
/// depends on the table schema and the target attribute, not on which row
/// is being repaired. Imputation queries (`"<key>, <attr>"`) drop the row
/// key; error-detection queries (`"<attr>: <value>?"`) drop the cell
/// value. Other task kinds (table QA questions, entity pairs) keep their
/// query: there the query genuinely determines the answer.
fn generalize_query(task: TaskKind, query: &str) -> String {
    match task {
        TaskKind::Imputation => match query.rsplit_once(',') {
            Some((_, target)) => format!("*, {}", target.trim()),
            None => query.to_string(),
        },
        TaskKind::ErrorDetection => match query.split_once(':') {
            Some((attr, value)) if value.trim_end().ends_with('?') => {
                format!("{}: *?", attr.trim())
            }
            _ => query.to_string(),
        },
        _ => query.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unidm_llm::protocol::{render_pcq, render_pdp, render_pri, Claim, SerializedRecord};

    fn recs() -> Vec<SerializedRecord> {
        vec![
            SerializedRecord::new(vec![
                ("city".into(), "Alicante".into()),
                ("country".into(), "Spain".into()),
            ]),
            SerializedRecord::new(vec![
                ("city".into(), "Florence".into()),
                ("country".into(), "Italy".into()),
            ]),
        ]
    }

    #[test]
    fn verbatim_is_identity() {
        let key = PromptKey::canonicalize("  spaced   out  ", CanonLevel::Verbatim);
        assert_eq!(key.text(), "  spaced   out  ");
        assert_eq!(key.stem(), "");
    }

    #[test]
    fn whitespace_normalization_folds_variants() {
        let a = PromptKey::canonicalize("The quick  brown fox \n jumps", CanonLevel::Whitespace);
        let b = PromptKey::canonicalize("The quick brown fox\njumps\n", CanonLevel::Whitespace);
        assert_eq!(a, b);
        assert_eq!(a.text(), "The quick brown fox\njumps");
    }

    #[test]
    fn prm_splits_query_into_suffix() {
        let candidates = vec!["country".to_string(), "population".to_string()];
        let p = render_prm(TaskKind::Imputation, "Copenhagen, timezone", &candidates);
        let key = PromptKey::canonicalize(&p, CanonLevel::Whitespace);
        assert_eq!(key.suffix(), "Copenhagen, timezone");
        assert!(key.stem().contains("candidate attributes"));
        assert_eq!(key.text(), p, "whitespace level must not rewrite content");
    }

    #[test]
    fn table_stem_folds_prm_rows() {
        let candidates = vec!["country".to_string(), "population".to_string()];
        let a = render_prm(TaskKind::Imputation, "Copenhagen, timezone", &candidates);
        let b = render_prm(TaskKind::Imputation, "Florence, timezone", &candidates);
        let ka = PromptKey::canonicalize(&a, CanonLevel::TableStem);
        let kb = PromptKey::canonicalize(&b, CanonLevel::TableStem);
        assert_eq!(ka, kb);
        assert_eq!(ka.suffix(), "*, timezone");
        // The canonical text is still a well-formed p_rm prompt.
        let req = parse_prm(&ka.text()).expect("canonical p_rm parses");
        assert_eq!(req.query, "*, timezone");
        assert_eq!(req.candidates, candidates);
    }

    #[test]
    fn table_stem_keeps_prompts_with_distinct_targets_apart() {
        let candidates = vec!["country".to_string()];
        let a = render_prm(TaskKind::Imputation, "Copenhagen, timezone", &candidates);
        let b = render_prm(TaskKind::Imputation, "Copenhagen, population", &candidates);
        assert_ne!(
            PromptKey::canonicalize(&a, CanonLevel::TableStem),
            PromptKey::canonicalize(&b, CanonLevel::TableStem),
            "different target attributes must not share an entry"
        );
    }

    #[test]
    fn table_stem_generalizes_error_detection_value() {
        let candidates = vec!["addr".to_string()];
        let a = render_prm(TaskKind::ErrorDetection, "city: sheffxeld?", &candidates);
        let b = render_prm(TaskKind::ErrorDetection, "city: chicago?", &candidates);
        let ka = PromptKey::canonicalize(&a, CanonLevel::TableStem);
        assert_eq!(ka, PromptKey::canonicalize(&b, CanonLevel::TableStem));
        assert_eq!(ka.suffix(), "city: *?");
    }

    #[test]
    fn table_stem_leaves_tableqa_questions_alone() {
        let candidates = vec!["gold".to_string()];
        let q = "Which nation won the most gold medals?";
        let key = PromptKey::canonicalize(
            &render_prm(TaskKind::TableQa, q, &candidates),
            CanonLevel::TableStem,
        );
        assert_eq!(key.suffix(), q, "questions determine the answer");
    }

    #[test]
    fn pri_query_and_instances_are_per_row() {
        let p = render_pri(TaskKind::Imputation, "Copenhagen, timezone", &recs());
        let key = PromptKey::canonicalize(&p, CanonLevel::TableStem);
        assert!(key.stem().starts_with("The task is"));
        assert!(key.suffix().contains("Copenhagen"));
        assert!(key.suffix().contains("Florence"));
        assert_eq!(key.text(), p);
    }

    #[test]
    fn pdp_record_block_is_the_suffix() {
        let p = render_pdp(&recs());
        let key = PromptKey::canonicalize(&p, CanonLevel::Whitespace);
        assert!(key.stem().contains("convert the items"));
        assert!(key.suffix().contains("Alicante"));
        assert_eq!(key.text(), p);
    }

    #[test]
    fn pcq_demonstrations_land_in_the_stem() {
        let claim = Claim {
            task: TaskKind::Imputation,
            context: "Florence belongs to the country Italy.".into(),
            query: "city: Copenhagen; country: ?".into(),
        };
        let p = render_pcq(&claim);
        let key = PromptKey::canonicalize(&p, CanonLevel::TableStem);
        assert!(key.stem().contains("Punch! Home Design"));
        assert!(!key.suffix().contains("Punch! Home Design"));
        assert!(key.suffix().contains("Copenhagen"));
        assert_eq!(key.text(), p);
    }

    #[test]
    fn canonicalization_is_idempotent() {
        let candidates = vec!["country".to_string(), "population".to_string()];
        let prompts = vec![
            render_prm(TaskKind::Imputation, "Copenhagen, timezone", &candidates),
            render_prm(TaskKind::ErrorDetection, "city: sheffxeld?", &candidates),
            render_pri(TaskKind::Imputation, "Copenhagen, timezone", &recs()),
            render_pdp(&recs()),
            "  an   unstructured\n\n prompt ".to_string(),
        ];
        for level in [CanonLevel::Whitespace, CanonLevel::TableStem] {
            for p in &prompts {
                let once = PromptKey::canonicalize(p, level);
                let twice = PromptKey::canonicalize(&once.text(), level);
                assert_eq!(once, twice, "idempotence failed at {level} for {p:?}");
            }
        }
    }

    #[test]
    fn hash_is_stable_and_separates_keys() {
        let key = PromptKey::canonicalize("hello world", CanonLevel::Whitespace);
        assert_eq!(key.hash64(), key.hash64());
        let other = PromptKey::canonicalize("hello worlds", CanonLevel::Whitespace);
        assert_ne!(key.hash64(), other.hash64());
        // Stem/suffix boundary participates in the hash: ("ab", "") and
        // ("a", "b") must not collide by concatenation.
        let a = PromptKey {
            stem: "ab".into(),
            suffix: String::new(),
            splice: 2,
        };
        let b = PromptKey {
            stem: "a".into(),
            suffix: "b".into(),
            splice: 1,
        };
        assert_ne!(a.hash64(), b.hash64());
    }
}
