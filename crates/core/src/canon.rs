//! Prompt canonicalization: the cache-key layer of the prompting subsystem.
//!
//! The paper's pipeline prompts are highly redundant across the rows of one
//! table — every imputation run renders the same `p_rm` preamble, the same
//! `p_cq` demonstration block, and near-identical `p_dp` record lists — but
//! a verbatim prompt → completion memo only deduplicates byte-identical
//! strings. On the imputation workload that yields ~2% hit rates, because
//! the meta-wise retrieval prompt embeds the per-row target key even though
//! the model's answer ("which attributes help?") is a property of the
//! *table*, not the row.
//!
//! [`PromptKey::canonicalize`] closes that gap. It normalizes whitespace
//! and splits each recognized prompt into a reusable **table-level stem**
//! (retrieval preambles, demonstration blocks, parsing instructions) plus a
//! **per-row suffix** (the target query, the claim, the record list). At
//! [`CanonLevel::TableStem`] it additionally rewrites the per-row part of
//! retrieval queries to their table-level form (`"Copenhagen, timezone"` →
//! `"*, timezone"`), so every row of a table shares one `p_rm` cache entry.
//!
//! Correctness under canonicalization is preserved by construction: the
//! cache completes the *canonical* prompt text on a miss (never the raw
//! variant), so the memo is a pure function of the canonical key.
//! Whichever thread populates an entry, the stored completion is identical
//! — serial and parallel batches stay bit-for-bit equal.
//!
//! # The allocation-free hot path
//!
//! Canonicalization sits on the dispatch hot path: every cache lookup runs
//! it, and on a warm cache most lookups are hits that should cost nothing
//! beyond a hash and a map probe. [`CanonicalPrompt::canonicalize`] is the
//! hot-path entry point: it borrows the input (`Cow::Borrowed`) whenever
//! the prompt is **already canonical** — whitespace-normal, and (at
//! [`CanonLevel::TableStem`]) with its retrieval query already in
//! table-level form — and computes the stable FNV-1a content hash in the
//! same single scan that checks normality. No intermediate `String` is
//! built on that path; the only allocations happen when a prompt genuinely
//! needs rewriting. [`PromptKey`] is the owned form; its table-level stems
//! are interned as `Arc<str>`, so all rows of a table share one stem
//! allocation.
//!
//! # Examples
//!
//! Two rows of the same table fold to one key at table-stem level:
//!
//! ```
//! use unidm::{CanonLevel, PromptKey};
//! use unidm_llm::protocol::{render_prm, TaskKind};
//!
//! let candidates = vec!["country".to_string(), "population".to_string()];
//! let row_a = render_prm(TaskKind::Imputation, "Copenhagen, timezone", &candidates);
//! let row_b = render_prm(TaskKind::Imputation, "Florence, timezone", &candidates);
//! assert_ne!(row_a, row_b, "verbatim prompts differ per row");
//!
//! let key_a = PromptKey::canonicalize(&row_a, CanonLevel::TableStem);
//! let key_b = PromptKey::canonicalize(&row_b, CanonLevel::TableStem);
//! assert_eq!(key_a, key_b, "canonical keys fold the per-row target key");
//! assert_eq!(key_a.suffix(), "*, timezone");
//! ```
//!
//! An already-canonical prompt is borrowed, not copied:
//!
//! ```
//! use std::borrow::Cow;
//! use unidm::{CanonLevel, CanonicalPrompt};
//!
//! let canon = CanonicalPrompt::canonicalize("already canonical", CanonLevel::TableStem);
//! assert!(matches!(canon.text_cow(), Cow::Borrowed(_)));
//! ```

use std::borrow::Cow;
use std::collections::HashSet;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use unidm_llm::protocol::{parse_prm, render_prm, TaskKind};
use unidm_llm::Completion;

/// How aggressively [`PromptKey::canonicalize`] normalizes a prompt before
/// it is used as a cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CanonLevel {
    /// The key is the verbatim prompt: byte-identical prompts share an
    /// entry, nothing else. This is exact memoization — cached and
    /// uncached execution are indistinguishable down to token counts.
    #[default]
    Verbatim,
    /// Whitespace is normalized (runs of blanks collapse, line edges trim)
    /// and the prompt is split into stem + suffix, but no per-row content
    /// is rewritten. Prompts differing only in insignificant whitespace
    /// share an entry.
    Whitespace,
    /// Everything `Whitespace` does, plus per-row retrieval queries are
    /// rewritten to their table-level form: the `p_rm` query of an
    /// imputation run drops its row key, and an error-detection query
    /// drops its cell value. All rows of a table then share the same
    /// meta-retrieval entry, which is what lifts imputation hit rates
    /// from ~2% to ≥20%.
    TableStem,
    /// Canonicalization v2: everything `TableStem` does, plus
    /// order-insensitive folding of list-shaped prompt bodies. `p_dp`
    /// record blocks that differ only in row order sort to one canonical
    /// block (retrieval over the same rows produces the same parsing
    /// prompt whatever order scoring returned them in), and `p_ri`
    /// instance lists sort and renumber, so reorderings of one sampled
    /// instance set share an entry.
    ///
    /// Folded completions are **permutation-corrected on replay**: the
    /// fold records how the request's elements moved into canonical
    /// order ([`ReplayFold`]), and the cache maps the canonical
    /// completion's index-keyed scores (`p_ri`) or per-record lines
    /// (`p_dp`) back into the request's own index space. Replay is
    /// deterministic, but unlike the lower levels it is **semantic, not
    /// exact**: the model never sees the request's exact ordering, so
    /// per-index capability noise can differ from a direct call. The
    /// answer drift this induces is bounded and measured against
    /// uncached runs in the eval suite (see `tests/canon_v2.rs`);
    /// workloads that need exact replay stay at
    /// [`CanonLevel::TableStem`].
    Semantic,
}

impl CanonLevel {
    /// Short lowercase name, used in logs and bench output.
    pub fn as_str(&self) -> &'static str {
        match self {
            CanonLevel::Verbatim => "verbatim",
            CanonLevel::Whitespace => "whitespace",
            CanonLevel::TableStem => "table-stem",
            CanonLevel::Semantic => "semantic",
        }
    }

    /// Whether this level rewrites per-row retrieval queries to their
    /// table-level form ([`CanonLevel::TableStem`] and above).
    pub fn generalizes_queries(&self) -> bool {
        matches!(self, CanonLevel::TableStem | CanonLevel::Semantic)
    }

    /// Whether this level folds order-insensitive list bodies (`p_dp`
    /// record blocks, `p_ri` instance lists) — canonicalization v2.
    pub fn folds_lists(&self) -> bool {
        matches!(self, CanonLevel::Semantic)
    }
}

impl std::fmt::Display for CanonLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into a running FNV-1a state.
#[inline]
fn fnv1a_extend(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a of `text` from the offset basis.
#[inline]
fn fnv1a(text: &str) -> u64 {
    fnv1a_extend(FNV_OFFSET, text.as_bytes())
}

/// How a completion of the canonical (sorted) form of a folded prompt is
/// adapted back into the index space of the request that produced this
/// canonicalization — the replay half of the v2 folds.
///
/// Both variants carry the fold's permutation: `perm[canonical_pos] =
/// original_pos` (0-based). Element `j` of the canonical completion
/// belongs to element `perm[j]` of the request, so [`ReplayFold::adapt`]
/// scatters the canonical elements back to their requested positions.
/// Adaptation is total and never fails: a completion that is not in the
/// expected per-element shape (free-form text, wrong element count) is
/// returned unchanged — the caller gets exactly what v1 replay gave it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayFold {
    /// A folded `p_ri` instance list: the completion is index-keyed
    /// relevance scores (`"1:2, 2:0, …"`) whose indices are remapped.
    PriScores(Vec<usize>),
    /// A folded `p_dp` record block: the completion is one line per
    /// record, reordered back to the request's record order.
    PdpLines(Vec<usize>),
}

impl ReplayFold {
    /// Maps `canonical` — the completion of the canonical (sorted)
    /// prompt — into the request's original element order. Token usage is
    /// carried over unchanged (the canonical call is the one that paid).
    pub fn adapt(&self, canonical: &Completion) -> Completion {
        let text = match self {
            ReplayFold::PriScores(perm) => remap_pri_scores(&canonical.text, perm),
            ReplayFold::PdpLines(perm) => remap_lines(&canonical.text, perm),
        };
        match text {
            Some(text) => Completion {
                text,
                usage: canonical.usage,
            },
            None => canonical.clone(),
        }
    }

    /// The fold's permutation (`perm[canonical_pos] = original_pos`).
    pub fn permutation(&self) -> &[usize] {
        match self {
            ReplayFold::PriScores(perm) | ReplayFold::PdpLines(perm) => perm,
        }
    }
}

/// Remaps an index-keyed `p_ri` score list (`"1:s, 2:s, …"`) through
/// `perm`. `None` when the text is not exactly a full, in-order score
/// list for `perm.len()` instances.
fn remap_pri_scores(text: &str, perm: &[usize]) -> Option<String> {
    let mut scores: Vec<&str> = vec![""; perm.len()];
    let mut seen = 0usize;
    for (j, part) in text.split(',').enumerate() {
        let (index, score) = part.trim().split_once(':')?;
        if index.parse::<usize>().ok()? != j + 1 {
            return None;
        }
        let slot = *perm.get(j)?;
        scores[slot] = score;
        seen += 1;
    }
    if seen != perm.len() {
        return None;
    }
    let mut out = String::with_capacity(text.len());
    for (k, score) in scores.iter().enumerate() {
        if k > 0 {
            out.push_str(", ");
        }
        out.push_str(&(k + 1).to_string());
        out.push(':');
        out.push_str(score);
    }
    Some(out)
}

/// Reorders the lines of a per-record completion through `perm`. `None`
/// when the line count does not match the fold's element count.
fn remap_lines(text: &str, perm: &[usize]) -> Option<String> {
    let lines: Vec<&str> = text.split('\n').collect();
    if lines.len() != perm.len() {
        return None;
    }
    let mut out: Vec<&str> = vec![""; perm.len()];
    for (j, line) in lines.iter().enumerate() {
        out[perm[j]] = line;
    }
    Some(out.join("\n"))
}

/// The borrowed, hot-path form of a canonical prompt: the canonical text
/// (borrowed from the input whenever no rewrite was needed), the location
/// of the per-row suffix inside it, and the stable content hash — computed
/// in the same single pass that checks the input for normality.
///
/// This is what the prompt cache keys its lookups on: a hit needs only the
/// canonical text (for the map probe) and the hash (for shard selection),
/// neither of which allocates when the incoming prompt is already
/// canonical. [`CanonicalPrompt::into_key`] materializes the owned
/// [`PromptKey`] when one is needed.
#[derive(Debug, Clone)]
pub struct CanonicalPrompt<'a> {
    /// The canonical prompt text (suffix embedded at the splice point).
    text: Cow<'a, str>,
    /// Byte offset where the per-row suffix starts inside `text`.
    splice: usize,
    /// Byte length of the per-row suffix.
    suffix_len: usize,
    /// FNV-1a hash of the canonical text.
    hash: u64,
    /// How completions of the canonical text are adapted back into this
    /// request's element order (`None` when no v2 fold reordered it).
    replay: Option<ReplayFold>,
}

impl<'a> CanonicalPrompt<'a> {
    /// Canonicalizes `prompt` at `level`, borrowing the input whenever it
    /// is already canonical.
    ///
    /// The borrowed fast path covers: [`CanonLevel::Verbatim`] always;
    /// whitespace-normal prompts at [`CanonLevel::Whitespace`]; and
    /// whitespace-normal prompts whose retrieval query is already in
    /// table-level form at [`CanonLevel::TableStem`]. Everything else
    /// falls back to the allocating rewrite.
    pub fn canonicalize(prompt: &'a str, level: CanonLevel) -> CanonicalPrompt<'a> {
        if level == CanonLevel::Verbatim {
            return CanonicalPrompt {
                text: Cow::Borrowed(prompt),
                splice: 0,
                suffix_len: prompt.len(),
                hash: fnv1a(prompt),
                replay: None,
            };
        }
        let norm = normalize_whitespace(prompt);
        // p_rm — the query is the suffix, spliced mid-stem. The borrowed
        // scanner accepts only prompts in the renderer's exact shape, so
        // taking its split is provably identical to a parse + re-render.
        if let Some(scan) = scan_prm_exact(&norm) {
            let (query_start, query_end) = scan.query;
            let query = &norm[query_start..query_end];
            let rewritten = if level.generalizes_queries() {
                generalize_query(scan.task, query)
            } else {
                Cow::Borrowed(query)
            };
            return match rewritten {
                Cow::Borrowed(_) => CanonicalPrompt {
                    splice: query_start,
                    suffix_len: query_end - query_start,
                    hash: hash_of(&norm),
                    text: norm,
                    replay: None,
                },
                Cow::Owned(general) => {
                    let mut text = String::with_capacity(norm.len() - query.len() + general.len());
                    text.push_str(&norm[..query_start]);
                    text.push_str(&general);
                    text.push_str(&norm[query_end..]);
                    CanonicalPrompt {
                        hash: fnv1a(&text),
                        splice: query_start,
                        suffix_len: general.len(),
                        text: Cow::Owned(text),
                        replay: None,
                    }
                }
            };
        }
        // Oddly spaced p_rm variants the exact scanner refused: re-render
        // around the (possibly generalized) query so the key is
        // independent of how the original prompt was spaced.
        if let Some(req) = parse_prm(&norm) {
            let query = if level.generalizes_queries() {
                generalize_query(req.task, &req.query).into_owned()
            } else {
                req.query.clone()
            };
            let rendered = render_prm(req.task, &query, &req.candidates);
            if let Some(pos) = rendered.find(QUERY_MARKER) {
                let splice = pos + QUERY_MARKER.len();
                return CanonicalPrompt {
                    hash: fnv1a(&rendered),
                    splice,
                    suffix_len: query.len(),
                    text: Cow::Owned(rendered),
                    replay: None,
                };
            }
        }
        // p_ri — the task header is the stem; query and candidate
        // instances are per-row. At Semantic, reorderings of one instance
        // list fold: lines sort and renumber to one canonical list (a
        // no-op — hence borrowed — when the list is already sorted).
        if norm.contains("Score the relevance") {
            if let Some(pos) = norm.find("The target query is") {
                if level.folds_lists() {
                    if let Some((folded, perm)) = fold_pri_instances(&norm) {
                        let suffix_len = folded.len() - pos;
                        return CanonicalPrompt {
                            splice: pos,
                            suffix_len,
                            hash: fnv1a(&folded),
                            text: Cow::Owned(folded),
                            replay: Some(ReplayFold::PriScores(perm)),
                        };
                    }
                }
                let suffix_len = norm.len() - pos;
                return CanonicalPrompt {
                    splice: pos,
                    suffix_len,
                    hash: hash_of(&norm),
                    text: norm,
                    replay: None,
                };
            }
        }
        // p_cq — instruction and demonstration block are the stem; the
        // final claim is per-row.
        if norm.starts_with("Write the claim as a cloze question.") {
            if let Some(pos) = norm.rfind("\nClaim:") {
                let suffix_len = norm.len() - pos;
                return CanonicalPrompt {
                    splice: pos,
                    suffix_len,
                    hash: hash_of(&norm),
                    text: norm,
                    replay: None,
                };
            }
        }
        // p_dp — the parsing instruction is the stem; the bracketed record
        // block is per-retrieval (the closing bracket stays in the stem).
        // At Semantic, record blocks that differ only in row order fold:
        // the record lines sort to one canonical block (order-insensitive
        // record digest — a no-op, hence borrowed, when already sorted).
        if let Some(pos) = norm.find(PDP_MARKER) {
            if norm.ends_with(']') {
                let splice = pos + PDP_MARKER.len();
                let suffix_len = norm.len() - 1 - splice;
                if level.folds_lists() {
                    let body = &norm[splice..norm.len() - 1];
                    if let Some((sorted, perm)) = sort_lines(body) {
                        let mut text = String::with_capacity(norm.len());
                        text.push_str(&norm[..splice]);
                        text.push_str(&sorted);
                        text.push(']');
                        return CanonicalPrompt {
                            hash: fnv1a(&text),
                            splice,
                            suffix_len: sorted.len(),
                            text: Cow::Owned(text),
                            replay: Some(ReplayFold::PdpLines(perm)),
                        };
                    }
                }
                return CanonicalPrompt {
                    splice,
                    suffix_len,
                    hash: hash_of(&norm),
                    text: norm,
                    replay: None,
                };
            }
        }
        // Target prompts (cloze questions, flat claims) and anything
        // unrecognized: wholly per-row.
        let suffix_len = norm.len();
        CanonicalPrompt {
            splice: 0,
            suffix_len,
            hash: hash_of(&norm),
            text: norm,
            replay: None,
        }
    }

    /// The canonical prompt text — what a canonicalizing cache completes
    /// on a miss.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The canonical text as the underlying `Cow` (borrowed when the
    /// input was already canonical).
    pub fn text_cow(&self) -> &Cow<'a, str> {
        &self.text
    }

    /// The per-row suffix slice of the canonical text.
    pub fn suffix(&self) -> &str {
        &self.text[self.splice..self.splice + self.suffix_len]
    }

    /// The stable FNV-1a hash of the canonical text, used for shard
    /// selection. Equal canonical texts always hash equal.
    pub fn hash64(&self) -> u64 {
        self.hash
    }

    /// Whether canonicalization borrowed the input (the zero-allocation
    /// fast path) rather than rewriting it.
    pub fn is_borrowed(&self) -> bool {
        matches!(self.text, Cow::Borrowed(_))
    }

    /// How completions of the canonical text must be adapted back into
    /// this request's element order — `Some` only when a v2 fold
    /// actually reordered the request (see [`ReplayFold`]).
    pub fn replay(&self) -> Option<&ReplayFold> {
        self.replay.as_ref()
    }

    /// Materializes the owned [`PromptKey`]: the stem (text minus the
    /// suffix range) is interned as a shared `Arc<str>`, so all rows of a
    /// table reuse one allocation.
    pub fn into_key(self) -> PromptKey {
        let text = self.text.as_ref();
        let suffix_end = self.splice + self.suffix_len;
        let mut stem = String::with_capacity(text.len() - self.suffix_len);
        stem.push_str(&text[..self.splice]);
        stem.push_str(&text[suffix_end..]);
        PromptKey {
            stem: intern_stem(&stem),
            suffix: text[self.splice..suffix_end].into(),
            splice: self.splice,
            hash: self.hash,
        }
    }

    /// Takes ownership of the canonical text (allocating only when it was
    /// still borrowed).
    pub fn into_text(self) -> String {
        self.text.into_owned()
    }
}

/// A canonical cache key: a reusable (interned) stem, a per-row suffix,
/// and the splice point where the suffix sits inside the stem.
///
/// The canonical prompt text — what the cache actually sends to the model
/// on a miss — is reconstructed by [`PromptKey::text`]: the suffix inserted
/// into the stem at the splice offset. For most prompt shapes the suffix
/// trails the stem; for `p_rm` it is the query spliced into the middle of
/// the preamble. Stems are table-level and shared across all rows of a
/// table, so they are interned: every `PromptKey` over the same table
/// points at one `Arc<str>`.
///
/// # Examples
///
/// The `p_cq` demonstration block (several hundred tokens, identical in
/// every cloze-construction prompt) lands in the stem; only the final claim
/// is per-row:
///
/// ```
/// use unidm::{CanonLevel, PromptKey};
/// use unidm_llm::protocol::{render_pcq, Claim, TaskKind};
///
/// let claim = Claim {
///     task: TaskKind::Imputation,
///     context: "Florence belongs to the country Italy.".into(),
///     query: "city: Copenhagen; country: ?".into(),
/// };
/// let prompt = render_pcq(&claim);
/// let key = PromptKey::canonicalize(&prompt, CanonLevel::Whitespace);
/// assert!(key.stem().contains("Punch! Home Design"), "demos in the stem");
/// assert!(key.suffix().contains("Copenhagen"), "claim in the suffix");
/// assert_eq!(key.text(), prompt, "text reconstructs the prompt");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PromptKey {
    stem: Arc<str>,
    suffix: Box<str>,
    splice: usize,
    hash: u64,
}

impl PromptKey {
    /// Canonicalizes `prompt` at the given level.
    ///
    /// At [`CanonLevel::Verbatim`] the key is the prompt itself (empty
    /// stem). At higher levels whitespace is normalized, recognized prompt
    /// shapes (`p_rm`, `p_ri`, `p_dp`, `p_cq`) are split into stem +
    /// suffix, and — at [`CanonLevel::TableStem`] — retrieval queries are
    /// generalized to their table-level form.
    ///
    /// Canonicalization is idempotent: canonicalizing [`PromptKey::text`]
    /// again at the same level yields an equal key. This is the owned
    /// entry point; the cache's lookup path uses
    /// [`CanonicalPrompt::canonicalize`], which borrows instead of
    /// allocating whenever the input is already canonical.
    pub fn canonicalize(prompt: &str, level: CanonLevel) -> PromptKey {
        CanonicalPrompt::canonicalize(prompt, level).into_key()
    }

    /// The reusable (table-level) part of the key.
    pub fn stem(&self) -> &str {
        &self.stem
    }

    /// The per-row part of the key.
    pub fn suffix(&self) -> &str {
        &self.suffix
    }

    /// The canonical prompt text: the suffix spliced into the stem. This
    /// is the string a canonicalizing cache completes on a miss.
    pub fn text(&self) -> String {
        let mut out = String::with_capacity(self.stem.len() + self.suffix.len());
        out.push_str(&self.stem[..self.splice]);
        out.push_str(&self.suffix);
        out.push_str(&self.stem[self.splice..]);
        out
    }

    /// A stable 64-bit FNV-1a hash of the canonical text, used for shard
    /// selection.
    ///
    /// Stable across runs and platforms (it hashes the canonical text's
    /// bytes, not `Hasher` state), so persisted snapshots reload into the
    /// same shards. Because canonicalization is idempotent, the canonical
    /// text determines the key — hashing the text alone is collision-free
    /// across distinct keys up to FNV collisions.
    pub fn hash64(&self) -> u64 {
        self.hash
    }
}

const QUERY_MARKER: &str = "The target query is [";
const PDP_MARKER: &str = "logical order: [";

/// Upper bound on distinct interned stems; beyond it new stems are handed
/// out uninterned so a pathological workload cannot grow the table without
/// bound. Real workloads hold a few stems per (table, prompt shape).
const INTERN_CAP: usize = 4096;

/// Returns a shared `Arc<str>` for `stem`, reusing the existing allocation
/// when the same stem was interned before.
fn intern_stem(stem: &str) -> Arc<str> {
    static INTERNER: OnceLock<Mutex<HashSet<Arc<str>>>> = OnceLock::new();
    let mut set = INTERNER
        .get_or_init(|| Mutex::new(HashSet::new()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    if let Some(shared) = set.get(stem) {
        return shared.clone();
    }
    let shared: Arc<str> = Arc::from(stem);
    if set.len() < INTERN_CAP {
        set.insert(shared.clone());
    }
    shared
}

/// Hash of an intermediate canonical text.
#[inline]
fn hash_of(text: &str) -> u64 {
    fnv1a(text)
}

/// Whether `prompt` is already in whitespace-normal form: no tabs or
/// carriage returns (the normalizer treats both as blanks, so its output
/// never contains them — which is what makes it a fixpoint), no double
/// blanks, no blanks or blank lines at line edges or the prompt's ends.
fn is_whitespace_normal(prompt: &str) -> bool {
    let bytes = prompt.as_bytes();
    if bytes.is_empty() {
        return true;
    }
    if bytes[0] == b' ' || bytes[0] == b'\n' {
        return false;
    }
    let last = bytes[bytes.len() - 1];
    if last == b' ' || last == b'\n' {
        return false;
    }
    let mut prev = 0u8;
    for &b in bytes {
        match b {
            b'\t' | b'\r' => return false,
            b' ' if prev == b' ' || prev == b'\n' => return false,
            b'\n' if prev == b' ' => return false,
            _ => {}
        }
        prev = b;
    }
    true
}

/// Collapses runs of blanks (spaces, tabs, stray carriage returns),
/// trims line edges and the prompt's ends, and normalizes line endings
/// to `\n` — borrowing the input untouched when it is already normal
/// (the hot path: rendered prompts are born normal). The output is a
/// fixpoint: normalizing it again returns it borrowed.
fn normalize_whitespace(prompt: &str) -> Cow<'_, str> {
    if is_whitespace_normal(prompt) {
        return Cow::Borrowed(prompt);
    }
    let mut out = String::with_capacity(prompt.len());
    for line in prompt.lines() {
        let mut pending_space = false;
        let start = out.len();
        for ch in line.chars() {
            // '\r' counts as a blank (a lone one is stray line-ending
            // junk): folding it here keeps the output '\r'-free, so
            // normalization is a fixpoint — it can never manufacture an
            // "\r\n" pair that a second pass would strip differently.
            if ch == ' ' || ch == '\t' || ch == '\r' {
                pending_space = out.len() > start;
                continue;
            }
            if pending_space {
                out.push(' ');
                pending_space = false;
            }
            out.push(ch);
        }
        out.push('\n');
    }
    while out.ends_with('\n') {
        out.pop();
    }
    let trimmed_start = out.trim_start_matches('\n').len();
    Cow::Owned(out.split_off(out.len() - trimmed_start))
}

/// Returns the lines of `body` sorted (joined by `\n`) plus the fold's
/// permutation (`perm[sorted_pos] = original_pos`) when a rewrite is
/// needed, `None` when the lines are already in sorted order — the
/// borrowed fast path of the v2 `p_dp` fold. Byte-wise ordering, stable
/// for equal lines: exact, deterministic, locale-free.
fn sort_lines(body: &str) -> Option<(String, Vec<usize>)> {
    let lines: Vec<&str> = body.split('\n').collect();
    if lines.windows(2).all(|w| w[0] <= w[1]) {
        return None;
    }
    let mut order: Vec<usize> = (0..lines.len()).collect();
    order.sort_by_key(|&i| lines[i]);
    let sorted: Vec<&str> = order.iter().map(|&i| lines[i]).collect();
    Some((sorted.join("\n"), order))
}

/// Rebuilds a whitespace-normal `p_ri` prompt with its numbered instance
/// list sorted by instance text and renumbered `1..n` — the v2 fold that
/// makes the key order-insensitive over the sampled instance set — plus
/// the fold's permutation (`perm[sorted_pos] = original_pos`, stable for
/// equal instances).
///
/// Returns `None` when no rewrite is needed (list already sorted and
/// numbered sequentially — the borrowed fast path) or when the prompt's
/// instance block is not in the renderer's `"{i}. {instance}"` shape
/// (fold refused; the unfolded v1 split still applies, so unrecognized
/// variants lose nothing).
fn fold_pri_instances(norm: &str) -> Option<(String, Vec<usize>)> {
    let (header, rest) = norm.split_once('\n')?;
    let mut bodies: Vec<&str> = Vec::new();
    let mut sorted = true;
    for (i, line) in rest.split('\n').enumerate() {
        let (number, body) = line.split_once(". ")?;
        if number.parse::<usize>().ok()? != i + 1 {
            return None;
        }
        if let Some(prev) = bodies.last() {
            if *prev > body {
                sorted = false;
            }
        }
        bodies.push(body);
    }
    if bodies.is_empty() || sorted {
        return None;
    }
    let mut order: Vec<usize> = (0..bodies.len()).collect();
    order.sort_by_key(|&i| bodies[i]);
    let mut out = String::with_capacity(norm.len());
    out.push_str(header);
    for (i, &slot) in order.iter().enumerate() {
        out.push('\n');
        out.push_str(&(i + 1).to_string());
        out.push_str(". ");
        out.push_str(bodies[slot]);
    }
    Some((out, order))
}

/// A borrowed scan of a `p_rm` prompt in the renderer's exact shape.
struct PrmScan {
    task: TaskKind,
    /// Byte range of the query inside the scanned text.
    query: (usize, usize),
}

/// Finds the depth-matched content of the bracket opening at `text[at]`
/// (which must be `[`), returning the byte range of the content.
fn bracket_content(text: &str, at: usize) -> Option<(usize, usize)> {
    let mut depth = 0usize;
    for (i, c) in text[at..].char_indices() {
        match c {
            '[' => depth += 1,
            ']' => {
                depth = depth.checked_sub(1)?;
                if depth == 0 {
                    return Some((at + 1, at + i));
                }
            }
            _ => {}
        }
    }
    None
}

/// Accepts `text` only if it is byte-for-byte what
/// [`render_prm`] produces for some `(task, query, candidates)` — in which
/// case splitting at the scanned query range is provably identical to a
/// parse + re-render, and no allocation is needed. Returns `None` for
/// anything else (oddly spaced variants fall back to the allocating
/// parse-and-render path).
fn scan_prm_exact(text: &str) -> Option<PrmScan> {
    const P1: &str = "The task is [";
    const P2: &str = "]. The target query is [";
    const P3: &str = "]. The candidate attributes are [";
    const P4: &str = "]. Which attributes are helpful for the task and the query?";
    let rest = text.strip_prefix(P1)?;
    // Task description: exact match against the static descriptions (the
    // parser lowercases; exactness requires the rendered form verbatim).
    let task_end = rest.find(']')?;
    let task = task_from_exact_description(&rest[..task_end])?;
    let after_task = P1.len() + task_end;
    if !text[after_task..].starts_with(P2) {
        return None;
    }
    let query_open = after_task + P2.len() - 1;
    let (query_start, query_end) = bracket_content(text, query_open)?;
    if !text[query_end..].starts_with(P3) {
        return None;
    }
    let cand_open = query_end + P3.len() - 1;
    let (cand_start, cand_end) = bracket_content(text, cand_open)?;
    // The remainder must be exactly the closing question.
    if &text[cand_end..] != P4 {
        return None;
    }
    // Candidate list exactness: parse_prm splits on ", ", trims each item
    // and drops empties; re-rendering joins with ", ". That round-trips
    // byte-for-byte iff every item is non-empty and trim-stable.
    let candidates = &text[cand_start..cand_end];
    if candidates
        .split(", ")
        .any(|item| item.is_empty() || item != item.trim() || item.contains(['[', ']']))
    {
        return None;
    }
    Some(PrmScan {
        task,
        query: (query_start, query_end),
    })
}

/// Maps a task description to its kind only on an exact (already
/// lowercase, untrimmed) match — the non-allocating counterpart of
/// [`TaskKind::from_description`].
fn task_from_exact_description(desc: &str) -> Option<TaskKind> {
    TaskKind::ALL.into_iter().find(|t| t.description() == desc)
}

/// Rewrites a per-row retrieval query to its table-level form, borrowing
/// the input when no rewrite is needed (already-general queries, task
/// kinds whose query genuinely determines the answer).
///
/// Meta-wise retrieval asks which attributes help a *task* — the answer
/// depends on the table schema and the target attribute, not on which row
/// is being repaired. Imputation queries (`"<key>, <attr>"`) drop the row
/// key; error-detection queries (`"<attr>: <value>?"`) drop the cell
/// value. Other task kinds (table QA questions, entity pairs) keep their
/// query.
fn generalize_query(task: TaskKind, query: &str) -> Cow<'_, str> {
    match task {
        TaskKind::Imputation => match query.rsplit_once(',') {
            Some((head, tail)) => {
                let target = tail.trim();
                // Identity iff the query is already exactly "*, <target>".
                if head == "*" && tail.strip_prefix(' ') == Some(target) {
                    Cow::Borrowed(query)
                } else {
                    Cow::Owned(format!("*, {target}"))
                }
            }
            None => Cow::Borrowed(query),
        },
        TaskKind::ErrorDetection => match query.split_once(':') {
            Some((attr, value)) if value.trim_end().ends_with('?') => {
                if attr == attr.trim() && value == " *?" {
                    Cow::Borrowed(query)
                } else {
                    Cow::Owned(format!("{}: *?", attr.trim()))
                }
            }
            _ => Cow::Borrowed(query),
        },
        _ => Cow::Borrowed(query),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unidm_llm::protocol::{render_pcq, render_pdp, render_pri, Claim, SerializedRecord};

    fn recs() -> Vec<SerializedRecord> {
        vec![
            SerializedRecord::new(vec![
                ("city".into(), "Alicante".into()),
                ("country".into(), "Spain".into()),
            ]),
            SerializedRecord::new(vec![
                ("city".into(), "Florence".into()),
                ("country".into(), "Italy".into()),
            ]),
        ]
    }

    #[test]
    fn verbatim_is_identity() {
        let key = PromptKey::canonicalize("  spaced   out  ", CanonLevel::Verbatim);
        assert_eq!(key.text(), "  spaced   out  ");
        assert_eq!(key.stem(), "");
    }

    #[test]
    fn whitespace_normalization_folds_variants() {
        let a = PromptKey::canonicalize("The quick  brown fox \n jumps", CanonLevel::Whitespace);
        let b = PromptKey::canonicalize("The quick brown fox\njumps\n", CanonLevel::Whitespace);
        assert_eq!(a, b);
        assert_eq!(a.text(), "The quick brown fox\njumps");
    }

    #[test]
    fn prm_splits_query_into_suffix() {
        let candidates = vec!["country".to_string(), "population".to_string()];
        let p = render_prm(TaskKind::Imputation, "Copenhagen, timezone", &candidates);
        let key = PromptKey::canonicalize(&p, CanonLevel::Whitespace);
        assert_eq!(key.suffix(), "Copenhagen, timezone");
        assert!(key.stem().contains("candidate attributes"));
        assert_eq!(key.text(), p, "whitespace level must not rewrite content");
    }

    #[test]
    fn table_stem_folds_prm_rows() {
        let candidates = vec!["country".to_string(), "population".to_string()];
        let a = render_prm(TaskKind::Imputation, "Copenhagen, timezone", &candidates);
        let b = render_prm(TaskKind::Imputation, "Florence, timezone", &candidates);
        let ka = PromptKey::canonicalize(&a, CanonLevel::TableStem);
        let kb = PromptKey::canonicalize(&b, CanonLevel::TableStem);
        assert_eq!(ka, kb);
        assert_eq!(ka.suffix(), "*, timezone");
        // The canonical text is still a well-formed p_rm prompt.
        let req = parse_prm(&ka.text()).expect("canonical p_rm parses");
        assert_eq!(req.query, "*, timezone");
        assert_eq!(req.candidates, candidates);
    }

    #[test]
    fn table_stem_keeps_prompts_with_distinct_targets_apart() {
        let candidates = vec!["country".to_string()];
        let a = render_prm(TaskKind::Imputation, "Copenhagen, timezone", &candidates);
        let b = render_prm(TaskKind::Imputation, "Copenhagen, population", &candidates);
        assert_ne!(
            PromptKey::canonicalize(&a, CanonLevel::TableStem),
            PromptKey::canonicalize(&b, CanonLevel::TableStem),
            "different target attributes must not share an entry"
        );
    }

    #[test]
    fn table_stem_generalizes_error_detection_value() {
        let candidates = vec!["addr".to_string()];
        let a = render_prm(TaskKind::ErrorDetection, "city: sheffxeld?", &candidates);
        let b = render_prm(TaskKind::ErrorDetection, "city: chicago?", &candidates);
        let ka = PromptKey::canonicalize(&a, CanonLevel::TableStem);
        assert_eq!(ka, PromptKey::canonicalize(&b, CanonLevel::TableStem));
        assert_eq!(ka.suffix(), "city: *?");
    }

    #[test]
    fn table_stem_leaves_tableqa_questions_alone() {
        let candidates = vec!["gold".to_string()];
        let q = "Which nation won the most gold medals?";
        let key = PromptKey::canonicalize(
            &render_prm(TaskKind::TableQa, q, &candidates),
            CanonLevel::TableStem,
        );
        assert_eq!(key.suffix(), q, "questions determine the answer");
    }

    #[test]
    fn pri_query_and_instances_are_per_row() {
        let p = render_pri(TaskKind::Imputation, "Copenhagen, timezone", &recs());
        let key = PromptKey::canonicalize(&p, CanonLevel::TableStem);
        assert!(key.stem().starts_with("The task is"));
        assert!(key.suffix().contains("Copenhagen"));
        assert!(key.suffix().contains("Florence"));
        assert_eq!(key.text(), p);
    }

    #[test]
    fn pdp_record_block_is_the_suffix() {
        let p = render_pdp(&recs());
        let key = PromptKey::canonicalize(&p, CanonLevel::Whitespace);
        assert!(key.stem().contains("convert the items"));
        assert!(key.suffix().contains("Alicante"));
        assert_eq!(key.text(), p);
    }

    #[test]
    fn pcq_demonstrations_land_in_the_stem() {
        let claim = Claim {
            task: TaskKind::Imputation,
            context: "Florence belongs to the country Italy.".into(),
            query: "city: Copenhagen; country: ?".into(),
        };
        let p = render_pcq(&claim);
        let key = PromptKey::canonicalize(&p, CanonLevel::TableStem);
        assert!(key.stem().contains("Punch! Home Design"));
        assert!(!key.suffix().contains("Punch! Home Design"));
        assert!(key.suffix().contains("Copenhagen"));
        assert_eq!(key.text(), p);
    }

    #[test]
    fn canonicalization_is_idempotent() {
        let candidates = vec!["country".to_string(), "population".to_string()];
        let prompts = vec![
            render_prm(TaskKind::Imputation, "Copenhagen, timezone", &candidates),
            render_prm(TaskKind::ErrorDetection, "city: sheffxeld?", &candidates),
            render_pri(TaskKind::Imputation, "Copenhagen, timezone", &recs()),
            render_pdp(&recs()),
            "  an   unstructured\n\n prompt ".to_string(),
        ];
        for level in [
            CanonLevel::Whitespace,
            CanonLevel::TableStem,
            CanonLevel::Semantic,
        ] {
            for p in &prompts {
                let once = PromptKey::canonicalize(p, level);
                let twice = PromptKey::canonicalize(&once.text(), level);
                assert_eq!(once, twice, "idempotence failed at {level} for {p:?}");
            }
        }
    }

    #[test]
    fn canonical_prompts_are_borrowed_not_copied() {
        // Rendered prompts are born whitespace-normal, so re-canonicalizing
        // a canonical text must take the borrowed fast path at every level.
        let candidates = vec!["country".to_string(), "population".to_string()];
        let prompts = vec![
            render_prm(TaskKind::Imputation, "Copenhagen, timezone", &candidates),
            render_prm(TaskKind::ErrorDetection, "city: sheffxeld?", &candidates),
            render_prm(TaskKind::TableQa, "Which nation won?", &candidates),
            render_pri(TaskKind::Imputation, "Copenhagen, timezone", &recs()),
            render_pdp(&recs()),
            "a plain prompt".to_string(),
        ];
        for level in [
            CanonLevel::Verbatim,
            CanonLevel::Whitespace,
            CanonLevel::TableStem,
            CanonLevel::Semantic,
        ] {
            for p in &prompts {
                let canonical = PromptKey::canonicalize(p, level).text();
                let again = CanonicalPrompt::canonicalize(&canonical, level);
                assert!(
                    again.is_borrowed(),
                    "canonical text must be borrowed at {level}: {canonical:?}"
                );
                assert_eq!(again.text(), canonical);
            }
        }
    }

    fn reversed_recs() -> Vec<SerializedRecord> {
        let mut r = recs();
        r.reverse();
        r
    }

    #[test]
    fn semantic_folds_pdp_row_order() {
        let a = render_pdp(&recs());
        let b = render_pdp(&reversed_recs());
        assert_ne!(a, b, "reordered records render differently");
        assert_ne!(
            PromptKey::canonicalize(&a, CanonLevel::TableStem),
            PromptKey::canonicalize(&b, CanonLevel::TableStem),
            "v1 levels keep row orderings apart"
        );
        let ka = PromptKey::canonicalize(&a, CanonLevel::Semantic);
        let kb = PromptKey::canonicalize(&b, CanonLevel::Semantic);
        assert_eq!(ka, kb, "v2 folds record blocks differing only in row order");
        // The canonical block is the sorted one, still a well-formed p_dp.
        assert_eq!(ka.text(), a, "recs() renders in sorted order already");
        let sorted_lines: Vec<&str> = ka.suffix().split('\n').collect();
        assert!(sorted_lines.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn semantic_folds_pri_instance_order_and_renumbers() {
        let a = render_pri(TaskKind::Imputation, "Copenhagen, timezone", &recs());
        let b = render_pri(
            TaskKind::Imputation,
            "Copenhagen, timezone",
            &reversed_recs(),
        );
        assert_ne!(
            PromptKey::canonicalize(&a, CanonLevel::TableStem),
            PromptKey::canonicalize(&b, CanonLevel::TableStem)
        );
        let ka = PromptKey::canonicalize(&a, CanonLevel::Semantic);
        let kb = PromptKey::canonicalize(&b, CanonLevel::Semantic);
        assert_eq!(ka, kb, "v2 folds instance-list reorderings");
        // The canonical list is sorted and renumbered 1..n.
        let canonical = ka.text();
        for (i, line) in canonical.lines().skip(1).enumerate() {
            assert!(
                line.starts_with(&format!("{}. ", i + 1)),
                "renumbered sequentially: {line:?}"
            );
        }
        // Distinct instance sets must not fold together.
        let other = render_pri(TaskKind::Imputation, "Copenhagen, timezone", &recs()[..1]);
        assert_ne!(ka, PromptKey::canonicalize(&other, CanonLevel::Semantic));
    }

    #[test]
    fn semantic_fold_refuses_malformed_instance_blocks() {
        // Numbering that is not 1..n: the fold is refused, but the v1
        // stem/suffix split still applies.
        let odd = "The task is [x]. The target query is [q]. Score the relevance (range from 0 \
                   to 3) of the given instances based on the task and the query:\n7. zeta\n1. \
                   alpha";
        let key = PromptKey::canonicalize(odd, CanonLevel::Semantic);
        assert!(key.suffix().contains("7. zeta\n1. alpha"), "order kept");
        assert_eq!(key.text(), odd);
    }

    #[test]
    fn already_general_queries_take_the_borrowed_path() {
        assert!(matches!(
            generalize_query(TaskKind::Imputation, "*, timezone"),
            Cow::Borrowed(_)
        ));
        assert!(matches!(
            generalize_query(TaskKind::Imputation, "Copenhagen, timezone"),
            Cow::Owned(_)
        ));
        assert!(matches!(
            generalize_query(TaskKind::ErrorDetection, "city: *?"),
            Cow::Borrowed(_)
        ));
        assert!(matches!(
            generalize_query(TaskKind::ErrorDetection, "city: chicago?"),
            Cow::Owned(_)
        ));
        // No-rewrite fallbacks borrow instead of copying (the old code
        // allocated a fresh String here).
        assert!(matches!(
            generalize_query(TaskKind::Imputation, "no comma"),
            Cow::Borrowed(_)
        ));
        assert!(matches!(
            generalize_query(TaskKind::TableQa, "Which nation won?"),
            Cow::Borrowed(_)
        ));
    }

    #[test]
    fn interned_stems_are_shared_across_rows() {
        let candidates = vec!["country".to_string(), "population".to_string()];
        let a = render_prm(TaskKind::Imputation, "Copenhagen, timezone", &candidates);
        let b = render_prm(TaskKind::Imputation, "Florence, timezone", &candidates);
        let ka = PromptKey::canonicalize(&a, CanonLevel::Whitespace);
        let kb = PromptKey::canonicalize(&b, CanonLevel::Whitespace);
        assert_ne!(ka, kb, "whitespace level keeps per-row queries distinct");
        assert!(
            Arc::ptr_eq(&ka.stem, &kb.stem),
            "rows of one table must share one interned stem allocation"
        );
    }

    #[test]
    fn hash_is_stable_and_separates_keys() {
        let key = PromptKey::canonicalize("hello world", CanonLevel::Whitespace);
        assert_eq!(key.hash64(), key.hash64());
        let other = PromptKey::canonicalize("hello worlds", CanonLevel::Whitespace);
        assert_ne!(key.hash64(), other.hash64());
        // The hash is a pure function of the canonical text: the borrowed
        // and owned paths must agree.
        let canonical = CanonicalPrompt::canonicalize("hello world", CanonLevel::Whitespace);
        assert_eq!(canonical.hash64(), key.hash64());
        assert_eq!(
            CanonicalPrompt::canonicalize("  hello   world ", CanonLevel::Whitespace).hash64(),
            key.hash64(),
            "whitespace variants fold to the same canonical hash"
        );
    }

    #[test]
    fn whitespace_normality_check_matches_the_normalizer() {
        let cases = [
            "plain",
            "two\nlines",
            " leading",
            "trailing ",
            "double  space",
            "tab\there",
            "line \nedge",
            "\nleading newline",
            "trailing newline\n",
            "interior\n\nblank line",
            "lone\rcarriage return",
            "trailing lone carriage return\r",
            "crlf line\r\nending",
            // Regression: trimming the blank between '\r' and '\n' must
            // not manufacture a "\r\n" the next pass would strip — the
            // normalizer folds '\r' as a blank, so output is '\r'-free.
            "ab\r \ncd",
            "",
        ];
        for case in cases {
            let normalized = normalize_whitespace(case);
            assert_eq!(
                is_whitespace_normal(case),
                normalized.as_ref() == case,
                "normality check disagrees with the normalizer on {case:?}"
            );
            assert!(
                is_whitespace_normal(normalized.as_ref()),
                "normalized output must be normal: {case:?} -> {normalized:?}"
            );
        }
    }
}
