//! Step 3 — target prompt construction (paper §4.4).
//!
//! With prompt construction enabled, the claim `(T, C', Q)` goes through
//! `p_cq` and the LLM emits a cloze question `p_as`; otherwise the claim is
//! concatenated directly. Either way the resulting target prompt is fed
//! back to the LLM for the final answer.
//!
//! Caching note: the `p_cq` prompt is dominated by a fixed demonstration
//! block (paper appendix A), which [`crate::canon`] places in the
//! reusable stem of the cache key; only the final claim is the per-row
//! suffix. Two runs whose context and query coincide therefore share one
//! cloze-construction entry under a canonicalizing [`crate::PromptCache`].

use unidm_llm::protocol::{render_pcq, render_simple, Claim};
use unidm_llm::LanguageModel;

use crate::{PipelineConfig, UniDmError};

/// Builds the final target prompt for `claim`.
///
/// # Errors
///
/// Propagates LLM failures from the `p_cq` call.
pub fn build_target_prompt(
    llm: &dyn LanguageModel,
    config: &PipelineConfig,
    claim: &Claim,
) -> Result<String, UniDmError> {
    if !config.prompt_construction {
        return Ok(render_simple(claim));
    }
    let prompt = render_pcq(claim);
    let reply = llm.complete(&prompt)?;
    Ok(reply.text.clone())
}

/// Feeds the target prompt to the LLM and returns the raw answer text.
///
/// # Errors
///
/// Propagates LLM failures.
pub fn answer(llm: &dyn LanguageModel, target_prompt: &str) -> Result<String, UniDmError> {
    Ok(llm.complete(target_prompt)?.text.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use unidm_llm::protocol::{claim_query_imputation, SerializedRecord, TaskKind};
    use unidm_llm::{LlmProfile, MockLlm};
    use unidm_world::World;

    fn llm() -> MockLlm {
        MockLlm::new(&World::generate(7), LlmProfile::gpt4_turbo(), 1)
    }

    fn claim() -> Claim {
        Claim {
            task: TaskKind::Imputation,
            context: "Florence belongs to the country Italy and is in the timezone Central \
                      European Time."
                .into(),
            query: claim_query_imputation(
                &SerializedRecord::new(vec![
                    ("city".into(), "Copenhagen".into()),
                    ("country".into(), "Denmark".into()),
                ]),
                "timezone",
            ),
        }
    }

    #[test]
    fn constructed_prompt_is_cloze() {
        let p = build_target_prompt(&llm(), &PipelineConfig::paper_default(), &claim()).unwrap();
        assert!(p.contains("__"), "{p}");
    }

    #[test]
    fn disabled_prompt_is_flat() {
        let cfg = PipelineConfig {
            prompt_construction: false,
            ..PipelineConfig::paper_default()
        };
        let p = build_target_prompt(&llm(), &cfg, &claim()).unwrap();
        assert!(p.starts_with("Task: "));
    }

    #[test]
    fn answer_completes_cloze() {
        let m = llm();
        let p = build_target_prompt(&m, &PipelineConfig::paper_default(), &claim()).unwrap();
        let y = answer(&m, &p).unwrap();
        assert_eq!(y, "Central European Time");
    }
}
