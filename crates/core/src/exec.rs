//! Parallel batch execution: a worker pool fanning [`UniDm`] runs over many
//! tasks, and a concurrent prompt cache deduplicating repeated LLM calls.
//!
//! The paper's experiments (Tables 1–11) execute thousands of independent
//! pipeline runs per dataset. Two properties of the pipeline make batch
//! execution profitable:
//!
//! * **Independence** — each run is a pure function of `(model, config,
//!   lake, task)`, so runs can execute on any thread in any order and still
//!   produce bit-identical answers and per-run usage
//!   ([`BatchRunner`]).
//! * **Redundancy** — tasks on the same table issue near-identical
//!   retrieval (`p_rm`, `p_ri`) and parsing (`p_dp`) prompts; a
//!   prompt-level memo turns that redundancy into saved tokens and
//!   throughput ([`PromptCache`]).
//!
//! ```
//! use unidm::{BatchRunner, PipelineConfig, PromptCache, Task};
//! use unidm_llm::{LanguageModel, LlmProfile, MockLlm};
//! use unidm_tablestore::{DataLake, Table, Value};
//! use unidm_world::World;
//!
//! let world = World::generate(42);
//! let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), 1);
//! let cache = PromptCache::unbounded(&llm);
//!
//! let mut cities = Table::builder("cities").columns(["city", "country", "timezone"]).build();
//! cities.push_row(vec![
//!     Value::text("Florence"), Value::text("Italy"), Value::text("Central European Time"),
//! ]).unwrap();
//! cities.push_row(vec![Value::text("Copenhagen"), Value::text("Denmark"), Value::Null]).unwrap();
//! let lake: DataLake = [cities].into_iter().collect();
//!
//! let tasks = vec![Task::imputation("cities", 1, "timezone", "city")];
//! let runner = BatchRunner::new(&cache, PipelineConfig::paper_default());
//! let outputs = runner.run(&lake, &tasks);
//! assert_eq!(outputs[0].as_ref().unwrap().answer, "Central European Time");
//! ```

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use unidm_llm::{Completion, LanguageModel, LlmError, Usage};
use unidm_tablestore::DataLake;

use crate::pipeline::{RunOutput, UniDm};
use crate::task::Task;
use crate::{PipelineConfig, UniDmError};

/// Hit/miss/saving statistics of a [`PromptCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Completions served from the cache.
    pub hits: usize,
    /// Completions that had to go to the model.
    pub misses: usize,
    /// Entries evicted to stay within capacity.
    pub evictions: usize,
    /// Tokens (prompt + completion) the model did not have to process
    /// because a hit short-circuited the call.
    pub tokens_saved: usize,
}

impl CacheStats {
    /// Hit rate in `[0, 1]` (zero when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Default)]
struct CacheInner {
    /// prompt → (completion, last-use stamp).
    entries: HashMap<String, (Completion, u64)>,
    /// last-use stamp → prompt: the recency index that makes LRU eviction
    /// O(log n) instead of a full scan of `entries`.
    recency: BTreeMap<u64, String>,
    /// Monotonic use counter driving LRU eviction.
    clock: u64,
    stats: CacheStats,
}

impl CacheInner {
    /// Returns the memoized completion for `prompt`, refreshing its
    /// recency, or `None` on a miss.
    fn touch(&mut self, prompt: &str) -> Option<Completion> {
        self.clock += 1;
        let stamp = self.clock;
        let (completion, last_used) = self.entries.get_mut(prompt)?;
        self.recency.remove(last_used);
        self.recency.insert(stamp, prompt.to_string());
        *last_used = stamp;
        Some(completion.clone())
    }

    /// Inserts (or refreshes) `prompt`, evicting the least-recently-used
    /// entry when over `capacity`.
    fn insert(&mut self, prompt: &str, completion: Completion, capacity: usize) {
        self.clock += 1;
        let stamp = self.clock;
        if let Some((_, old_stamp)) = self.entries.insert(prompt.to_string(), (completion, stamp)) {
            // A racing miss on the same prompt already inserted it; drop
            // the stale recency slot.
            self.recency.remove(&old_stamp);
        }
        self.recency.insert(stamp, prompt.to_string());
        if self.entries.len() > capacity {
            if let Some((_, victim)) = self.recency.pop_first() {
                self.entries.remove(&victim);
                self.stats.evictions += 1;
            }
        }
    }
}

/// A concurrent prompt → completion memo layered over any
/// [`LanguageModel`].
///
/// The cache is itself a `LanguageModel`, so it slots transparently under
/// [`UniDm`] or [`BatchRunner`]: repeated prompts — retrieval and parsing
/// calls shared by tasks on the same table, duplicate final claims —
/// are answered from memory without consuming model tokens.
///
/// Determinism is preserved by construction: the deterministic substrate
/// returns the same completion for the same prompt, so serving a memoized
/// completion changes nothing about answers or per-run usage — only about
/// what the *inner* model actually processed. Cached completions report
/// the usage of the original call, which keeps per-run accounting via
/// [`unidm_llm::UsageMeter`] identical with and without the cache; the
/// inner model's own counter only grows on misses, and the difference is
/// tracked as [`CacheStats::tokens_saved`].
///
/// Bounded caches evict the least-recently-used entry. Lookups never block
/// on the underlying model: the lock is released while a miss is being
/// completed, so concurrent workers only serialize on the map itself.
pub struct PromptCache<'a> {
    inner: &'a dyn LanguageModel,
    capacity: usize,
    state: Mutex<CacheInner>,
}

impl std::fmt::Debug for PromptCache<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PromptCache")
            .field("inner", &self.inner.name())
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

impl<'a> PromptCache<'a> {
    /// Creates a cache holding at most `capacity` completions (LRU
    /// eviction).
    pub fn new(inner: &'a dyn LanguageModel, capacity: usize) -> Self {
        PromptCache {
            inner,
            capacity: capacity.max(1),
            state: Mutex::new(CacheInner::default()),
        }
    }

    /// Creates a cache that never evicts.
    pub fn unbounded(inner: &'a dyn LanguageModel) -> Self {
        PromptCache {
            inner,
            capacity: usize::MAX,
            state: Mutex::new(CacheInner::default()),
        }
    }

    /// A snapshot of the hit/miss/eviction statistics.
    pub fn stats(&self) -> CacheStats {
        self.state.lock().expect("cache lock poisoned").stats
    }

    /// Number of completions currently held.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .expect("cache lock poisoned")
            .entries
            .len()
    }

    /// Whether the cache holds no completions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries (statistics are kept).
    pub fn clear(&self) {
        let mut state = self.state.lock().expect("cache lock poisoned");
        state.entries.clear();
        state.recency.clear();
    }
}

impl LanguageModel for PromptCache<'_> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn complete(&self, prompt: &str) -> Result<Completion, LlmError> {
        {
            let mut state = self.state.lock().expect("cache lock poisoned");
            if let Some(completion) = state.touch(prompt) {
                state.stats.hits += 1;
                state.stats.tokens_saved += completion.usage.total();
                return Ok(completion);
            }
            state.stats.misses += 1;
        }
        // Complete the miss without holding the lock: concurrent workers
        // must not serialize on the model. Two threads racing on the same
        // prompt both pay for it — the insert below is idempotent because
        // the substrate is deterministic.
        let completion = self.inner.complete(prompt)?;
        let mut state = self.state.lock().expect("cache lock poisoned");
        state.insert(prompt, completion.clone(), self.capacity);
        Ok(completion)
    }

    fn usage(&self) -> Usage {
        // Tokens the inner model actually processed; cache hits do not
        // appear here. Per-run attribution happens in `UniDm::run`.
        self.inner.usage()
    }

    fn reset_usage(&self) {
        self.inner.reset_usage();
    }

    fn context_window(&self) -> usize {
        self.inner.context_window()
    }
}

/// A parallel batch executor for [`UniDm`] runs.
///
/// Fans the tasks of a batch out across a pool of scoped worker threads
/// that share one model reference. Results come back in task order, each
/// carrying its own [`RunOutput::usage`] metered per run — never diffed
/// from the model's global counter — so the output is bit-for-bit
/// identical to running the same tasks serially.
#[derive(Clone, Copy)]
pub struct BatchRunner<'a> {
    llm: &'a dyn LanguageModel,
    config: PipelineConfig,
    workers: usize,
}

impl std::fmt::Debug for BatchRunner<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchRunner")
            .field("llm", &self.llm.name())
            .field("config", &self.config)
            .field("workers", &self.workers)
            .finish()
    }
}

impl<'a> BatchRunner<'a> {
    /// Creates a runner with one worker per available CPU (capped at 8 —
    /// the pipeline is compute-light, so more threads only add contention
    /// on the shared model).
    pub fn new(llm: &'a dyn LanguageModel, config: PipelineConfig) -> Self {
        let parallelism = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8);
        BatchRunner {
            llm,
            config,
            workers: parallelism,
        }
    }

    /// Overrides the worker count (`1` executes serially on the calling
    /// thread).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The pipeline configuration the workers run with.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Runs every task over `lake`, returning one result per task in task
    /// order.
    ///
    /// Individual task failures do not abort the batch: each slot carries
    /// its own `Result`, mirroring what a serial loop over
    /// [`UniDm::run`] would collect.
    pub fn run(&self, lake: &DataLake, tasks: &[Task]) -> Vec<Result<RunOutput, UniDmError>> {
        let workers = self.workers.min(tasks.len());
        if workers <= 1 {
            let unidm = UniDm::new(self.llm, self.config);
            return tasks.iter().map(|task| unidm.run(lake, task)).collect();
        }
        let slots: Vec<OnceLock<Result<RunOutput, UniDmError>>> =
            tasks.iter().map(|_| OnceLock::new()).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let unidm = UniDm::new(self.llm, self.config);
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(task) = tasks.get(i) else { break };
                        let result = unidm.run(lake, task);
                        slots[i].set(result).expect("slot claimed exactly once");
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every slot filled"))
            .collect()
    }

    /// Like [`BatchRunner::run`], but flattens each result to its answer
    /// text (empty string on error) — the shape the accuracy harnesses
    /// consume.
    pub fn answers(&self, lake: &DataLake, tasks: &[Task]) -> Vec<String> {
        self.run(lake, tasks)
            .into_iter()
            .map(|r| r.map(|o| o.answer).unwrap_or_default())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unidm_llm::protocol::SerializedRecord;
    use unidm_llm::{LlmProfile, MockLlm};
    use unidm_synthdata::{imputation, tableqa};
    use unidm_world::World;

    fn setup() -> (World, MockLlm) {
        let world = World::generate(7);
        let llm = MockLlm::new(&world, LlmProfile::gpt4_turbo(), 1);
        (world, llm)
    }

    fn imputation_tasks(ds: &unidm_synthdata::ImputationDataset, n: usize) -> Vec<Task> {
        ds.targets
            .iter()
            .take(n)
            .map(|t| Task::imputation(ds.table.name(), t.row, "city", "name"))
            .collect()
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let (world, llm) = setup();
        let ds = imputation::restaurant(&world, 3, 30);
        let lake: DataLake = [ds.table.clone()].into_iter().collect();
        let tasks = imputation_tasks(&ds, 30);
        let config = PipelineConfig::paper_default();

        let serial = BatchRunner::new(&llm, config)
            .with_workers(1)
            .run(&lake, &tasks);
        let parallel = BatchRunner::new(&llm, config)
            .with_workers(6)
            .run(&lake, &tasks);

        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            let s = s.as_ref().expect("serial run ok");
            let p = p.as_ref().expect("parallel run ok");
            assert_eq!(s.answer, p.answer);
            assert_eq!(
                s.usage, p.usage,
                "per-run usage must not depend on scheduling"
            );
        }
    }

    #[test]
    fn per_run_usage_ignores_other_runs_on_shared_model() {
        // Run the same task twice against a model whose global counter
        // already moved: metered per-run usage must be identical, proving
        // it is not derived from the global counter.
        let (world, llm) = setup();
        let ds = imputation::restaurant(&world, 3, 5);
        let lake: DataLake = [ds.table.clone()].into_iter().collect();
        let unidm = UniDm::new(&llm, PipelineConfig::paper_default());
        let task = Task::imputation("restaurants", ds.targets[0].row, "city", "name");
        let first = unidm.run(&lake, &task).unwrap();
        llm.complete("unrelated traffic from another tenant")
            .unwrap();
        let second = unidm.run(&lake, &task).unwrap();
        assert_eq!(first.usage, second.usage);
        assert!(first.usage.total() > 0);
    }

    #[test]
    fn batch_preserves_order_and_isolates_failures() {
        let (world, llm) = setup();
        let ds = imputation::restaurant(&world, 3, 6);
        let lake: DataLake = [ds.table.clone()].into_iter().collect();
        let mut tasks = imputation_tasks(&ds, 6);
        // Poison the middle of the batch with a reference to a missing
        // table; its neighbours must still succeed.
        tasks.insert(3, Task::imputation("no_such_table", 0, "a", "b"));
        let results = BatchRunner::new(&llm, PipelineConfig::paper_default())
            .with_workers(4)
            .run(&lake, &tasks);
        assert_eq!(results.len(), 7);
        assert!(matches!(results[3], Err(UniDmError::Table(_))));
        for (i, r) in results.iter().enumerate() {
            if i != 3 {
                assert!(r.is_ok(), "slot {i} should have survived the poisoned slot");
            }
        }
    }

    #[test]
    fn cache_hits_repeated_prompts_and_saves_tokens() {
        let (_, llm) = setup();
        let cache = PromptCache::unbounded(&llm);
        let a = cache.complete("The quick brown fox").unwrap();
        assert_eq!(
            cache.stats(),
            CacheStats {
                misses: 1,
                ..CacheStats::default()
            }
        );
        let b = cache.complete("The quick brown fox").unwrap();
        assert_eq!(a, b, "hit must return the memoized completion verbatim");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.tokens_saved, a.usage.total());
        // The inner model processed the prompt exactly once.
        assert_eq!(llm.usage(), a.usage);
    }

    #[test]
    fn cache_evicts_least_recently_used() {
        let (_, llm) = setup();
        let cache = PromptCache::new(&llm, 2);
        cache.complete("prompt one").unwrap();
        cache.complete("prompt two").unwrap();
        // Touch "prompt one" so "prompt two" becomes the LRU victim.
        cache.complete("prompt one").unwrap();
        cache.complete("prompt three").unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // "one" and "three" hit; "two" was evicted and misses again.
        let before = cache.stats();
        cache.complete("prompt one").unwrap();
        cache.complete("prompt three").unwrap();
        cache.complete("prompt two").unwrap();
        let after = cache.stats();
        assert_eq!(after.hits - before.hits, 2);
        assert_eq!(after.misses - before.misses, 1);
    }

    #[test]
    fn cache_propagates_model_errors() {
        let (_, llm) = setup();
        let cache = PromptCache::unbounded(&llm);
        assert!(cache.complete("  ").is_err());
        assert_eq!(cache.len(), 0, "errors must not be memoized");
    }

    #[test]
    fn cached_batch_same_answers_fewer_model_tokens() {
        let (world, llm) = setup();
        let ds = imputation::restaurant(&world, 3, 25);
        let lake: DataLake = [ds.table.clone()].into_iter().collect();
        let tasks = imputation_tasks(&ds, 25);
        let config = PipelineConfig::paper_default();

        llm.reset_usage();
        let plain = BatchRunner::new(&llm, config)
            .with_workers(4)
            .run(&lake, &tasks);
        let plain_tokens = llm.usage().total();

        llm.reset_usage();
        let cache = PromptCache::unbounded(&llm);
        let cached = BatchRunner::new(&cache, config)
            .with_workers(4)
            .run(&lake, &tasks);
        let cached_tokens = llm.usage().total();

        for (a, b) in plain.iter().zip(&cached) {
            assert_eq!(a.as_ref().unwrap().answer, b.as_ref().unwrap().answer);
        }
        assert!(
            cache.stats().hits > 0,
            "tasks on one table must share prompts"
        );
        assert!(
            cached_tokens < plain_tokens,
            "cache should save model tokens: {cached_tokens} vs {plain_tokens}"
        );
    }

    #[test]
    fn concurrency_smoke_all_task_kinds_share_one_model() {
        let (world, llm) = setup();
        let imp = imputation::restaurant(&world, 3, 4);
        let qa = tableqa::medals(&world, 3, 8, 3);
        let docs = unidm_synthdata::extraction::nba_players(&world, 3);
        let lake: DataLake = [imp.table.clone(), qa.table.clone()].into_iter().collect();

        let rec = |pairs: &[(&str, &str)]| {
            SerializedRecord::new(
                pairs
                    .iter()
                    .map(|(a, v)| ((*a).to_string(), (*v).to_string()))
                    .collect(),
            )
        };
        let mut tasks = vec![
            Task::Transformation {
                examples: vec![
                    ("20000101".into(), "2000-01-01".into()),
                    ("19991231".into(), "1999-12-31".into()),
                ],
                input: "20210315".into(),
            },
            Task::ErrorDetection {
                table: "restaurants".into(),
                row: 0,
                attr: "city".into(),
            },
            Task::EntityResolution {
                a: rec(&[("name", "Blue Bottle"), ("city", "Oakland")]),
                b: rec(&[("name", "Blue Bottle Coffee"), ("city", "Oakland")]),
                pool: vec![(
                    rec(&[("name", "Ritual")]),
                    rec(&[("name", "Ritual Coffee")]),
                    true,
                )],
            },
            Task::JoinDiscovery {
                left_name: "fifa_ranking.country_abrv".into(),
                left_values: vec!["GER".into(), "ITA".into(), "FRA".into()],
                right_name: "countries.ISO".into(),
                right_values: vec!["GER".into(), "ITA".into(), "IND".into()],
            },
            Task::Extraction {
                document: docs.docs[0].text.clone(),
                attr: "height".into(),
            },
            Task::TableQa {
                table: "medals".into(),
                question: qa.questions[0].question.clone(),
            },
        ];
        tasks.extend(imputation_tasks(&imp, 4));

        let cache = PromptCache::new(&llm, 256);
        let runner = BatchRunner::new(&cache, PipelineConfig::paper_default()).with_workers(7);
        let serial = runner.with_workers(1).run(&lake, &tasks);
        let parallel = runner.run(&lake, &tasks);
        for (kind, (s, p)) in tasks
            .iter()
            .map(Task::kind)
            .zip(serial.iter().zip(&parallel))
        {
            let s = s
                .as_ref()
                .unwrap_or_else(|e| panic!("{kind:?} serial failed: {e}"));
            let p = p
                .as_ref()
                .unwrap_or_else(|e| panic!("{kind:?} parallel failed: {e}"));
            assert_eq!(
                s.answer, p.answer,
                "{kind:?} answer must not depend on scheduling"
            );
            assert_eq!(
                s.usage, p.usage,
                "{kind:?} usage must not depend on scheduling"
            );
        }
    }
}
