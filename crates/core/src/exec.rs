//! Parallel batch execution: a work-stealing worker pool fanning
//! [`UniDm`] runs over many tasks, and a sharded, canonicalizing,
//! single-flight, persistable prompt cache deduplicating repeated LLM
//! calls.
//!
//! The paper's experiments (Tables 1–11) execute thousands of independent
//! pipeline runs per dataset. Two properties of the pipeline make batch
//! execution profitable:
//!
//! * **Independence** — each run is a pure function of `(model, config,
//!   lake, task)`, so runs can execute on any thread in any order and still
//!   produce bit-identical answers and per-run usage
//!   ([`BatchRunner`]).
//! * **Redundancy** — tasks on the same table issue near-identical
//!   retrieval (`p_rm`, `p_ri`) and parsing (`p_dp`) prompts; a
//!   prompt-level memo turns that redundancy into saved tokens and
//!   throughput ([`PromptCache`]).
//!
//! The cache composes four mechanisms, each independently tunable:
//!
//! * **Canonical keys** ([`crate::canon`]) — prompts are keyed by their
//!   canonical text, so whitespace variants and (at
//!   [`CanonLevel::TableStem`]) per-row retrieval preambles share entries.
//!   The lookup path runs [`CanonicalPrompt::canonicalize`], which borrows
//!   already-canonical prompts instead of copying them — a warm hit
//!   performs **zero heap allocations**.
//! * **Sharding** — the memo is split across N independently locked maps
//!   selected by key hash, so concurrent [`BatchRunner`] workers contend on
//!   1/N of the lock traffic.
//! * **Single-flight coalescing** — each shard keeps an in-flight table of
//!   canonical keys currently being completed. Concurrent duplicate
//!   lookups issue exactly **one** endpoint call: the first arrival leads,
//!   the rest block on the slot and share the leader's completion
//!   ([`CacheStats::coalesced`] counts them). Because misses complete the
//!   canonical text against a deterministic substrate, coalesced answers
//!   are bit-identical to what each caller would have fetched itself.
//! * **Persistence** — [`PromptCache::save_to`] / [`PromptCache::load_from`]
//!   snapshot the memo in a versioned text format, so a second eval run
//!   starts warm and answers its first prompts without any model call.
//!
//! [`BatchRunner`] adds scheduler-level deduplication on top: a
//! pre-dispatch planner groups byte-identical tasks, runs one
//! representative per group on the work-stealing pool, and copies the
//! representative's output to every duplicate slot — so duplicate tasks
//! never even reach the cache.
//!
//! ```
//! use unidm::{BatchRunner, PipelineConfig, PromptCache, Task};
//! use unidm_llm::{LanguageModel, LlmProfile, MockLlm};
//! use unidm_tablestore::{DataLake, Table, Value};
//! use unidm_world::World;
//!
//! let world = World::generate(42);
//! let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), 1);
//! let cache = PromptCache::unbounded(&llm);
//!
//! let mut cities = Table::builder("cities").columns(["city", "country", "timezone"]).build();
//! cities.push_row(vec![
//!     Value::text("Florence"), Value::text("Italy"), Value::text("Central European Time"),
//! ]).unwrap();
//! cities.push_row(vec![Value::text("Copenhagen"), Value::text("Denmark"), Value::Null]).unwrap();
//! let lake: DataLake = [cities].into_iter().collect();
//!
//! let tasks = vec![Task::imputation("cities", 1, "timezone", "city")];
//! let runner = BatchRunner::new(&cache, PipelineConfig::paper_default());
//! let outputs = runner.run(&lake, &tasks);
//! assert_eq!(outputs[0].as_ref().unwrap().answer, "Central European Time");
//! ```

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

use unidm_llm::{Completion, LanguageModel, LlmError, Usage};
use unidm_tablestore::DataLake;

use crate::canon::{CanonLevel, CanonicalPrompt};
use crate::dispatch::Dispatcher;
use crate::pipeline::{RunOutput, UniDm};
use crate::store::{CacheStore, StoreStats};
use crate::task::Task;
use crate::{PipelineConfig, UniDmError};

/// Hit/miss/saving statistics of a [`PromptCache`] (or of one shard).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Completions served from the cache.
    pub hits: usize,
    /// Completions that had to go to the model. With single-flight
    /// coalescing this counts **leaders only**, so for a fixed workload it
    /// equals the number of unique canonical keys completed — exactly,
    /// under every interleaving.
    pub misses: usize,
    /// Lookups that arrived while the same canonical key was already in
    /// flight and shared the leader's completion instead of issuing their
    /// own endpoint call. In a serial run this is always zero; under
    /// parallelism, `hits + coalesced` is exact while the split between
    /// the two depends on timing.
    pub coalesced: usize,
    /// Entries evicted to stay within capacity.
    pub evictions: usize,
    /// Tokens (prompt + completion) the model did not have to process
    /// because a hit — or a coalesced wait — short-circuited the call.
    pub tokens_saved: usize,
}

impl CacheStats {
    /// Hit rate in `[0, 1]` (zero when nothing was looked up). Coalesced
    /// lookups count toward the numerator: they were served without an
    /// endpoint call of their own.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.coalesced + self.misses;
        if total == 0 {
            0.0
        } else {
            (self.hits + self.coalesced) as f64 / total as f64
        }
    }

    /// Total lookups accounted (hits, coalesced waits, and misses).
    pub fn lookups(&self) -> usize {
        self.hits + self.coalesced + self.misses
    }

    /// Adds another stats snapshot into this one (used to aggregate
    /// per-shard statistics).
    pub fn merge(&mut self, other: CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.coalesced += other.coalesced;
        self.evictions += other.evictions;
        self.tokens_saved += other.tokens_saved;
    }
}

/// One memoized completion: the shared payload plus its last-use stamp.
#[derive(Debug)]
struct CacheEntry {
    completion: Arc<Completion>,
    /// Last-use stamp from the cache-wide clock; comparable across shards,
    /// which is what lets snapshot compaction keep the globally
    /// most-recent entries.
    stamp: u64,
    /// Second-chance bit: set on every hit, cleared when the clock hand
    /// sweeps past. An entry is evicted only if the hand finds the bit
    /// clear — i.e. it was not used for a whole revolution.
    referenced: bool,
}

/// State of a single-flight slot.
enum SlotState {
    /// The leader is still completing the canonical text.
    Pending,
    /// The leader finished; every waiter shares this result.
    Done(Result<Arc<Completion>, LlmError>),
    /// The leader panicked before filling the slot; waiters must retry
    /// (and one of them becomes the new leader).
    Abandoned,
}

/// A single-flight slot: the rendezvous between the leader completing a
/// canonical key and the coalesced waiters blocked on it.
struct InFlight {
    state: Mutex<SlotState>,
    ready: Condvar,
}

impl InFlight {
    fn new() -> Arc<InFlight> {
        Arc::new(InFlight {
            state: Mutex::new(SlotState::Pending),
            ready: Condvar::new(),
        })
    }

    /// Publishes the leader's result and wakes every waiter.
    fn fill(&self, result: Result<Arc<Completion>, LlmError>) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        *state = SlotState::Done(result);
        drop(state);
        self.ready.notify_all();
    }

    /// Marks the slot abandoned (leader panicked) and wakes every waiter.
    fn abandon(&self) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        *state = SlotState::Abandoned;
        drop(state);
        self.ready.notify_all();
    }

    /// Blocks until the leader publishes; `None` means the slot was
    /// abandoned and the caller should retry its lookup.
    fn wait(&self) -> Option<Result<Arc<Completion>, LlmError>> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            match &*state {
                SlotState::Pending => {
                    state = self
                        .ready
                        .wait(state)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                SlotState::Done(result) => return Some(result.clone()),
                SlotState::Abandoned => return None,
            }
        }
    }
}

#[derive(Default)]
struct CacheInner {
    /// canonical prompt text → memoized completion. Keyed by the owned
    /// text but probed with a borrowed `&str`, so a warm hit allocates
    /// nothing. `Arc<str>` so the eviction ring shares the key without a
    /// second copy of the text.
    entries: HashMap<Arc<str>, CacheEntry>,
    /// Second-chance eviction ring: every resident key, in insertion
    /// order, with `hand` pointing at the next eviction candidate. An
    /// evicted slot is reused in place by the entry that displaced it, so
    /// the ring never reallocates once the shard is full.
    ring: Vec<Arc<str>>,
    hand: usize,
    /// canonical prompt text → single-flight slot for keys currently
    /// being completed by a leader.
    inflight: HashMap<Box<str>, Arc<InFlight>>,
    stats: CacheStats,
}

impl CacheInner {
    /// Inserts (or refreshes) `text` at `stamp`, evicting one entry by
    /// second-chance when the shard is at `capacity`.
    ///
    /// Eviction is O(1) amortized: the clock hand sweeps the ring,
    /// clearing reference bits until it finds an entry not used since the
    /// last revolution — each resident entry is touched at most once per
    /// revolution, however full the shard is. (The previous policy
    /// scanned every entry for the minimum stamp on each over-capacity
    /// miss: O(entries) per miss, quadratic under sustained load.) The
    /// hit path still refreshes recency by overwriting the stamp and the
    /// reference bit in place — no ordered index, no allocation.
    ///
    /// Victim choice is deterministic for a deterministic operation
    /// order: the hand position and every reference bit are pure
    /// functions of the insert/hit sequence. `stats.evictions` stays
    /// exact — exactly one eviction per insert beyond capacity.
    fn insert(&mut self, text: &str, completion: Arc<Completion>, capacity: usize, stamp: u64) {
        if let Some(entry) = self.entries.get_mut(text) {
            // Refresh in place (re-admission or a racing co-leader): the
            // key keeps its ring slot.
            entry.completion = completion;
            entry.stamp = stamp;
            entry.referenced = true;
            return;
        }
        let key: Arc<str> = Arc::from(text);
        let entry = CacheEntry {
            completion,
            stamp,
            // A fresh entry starts unreferenced: it earns its second
            // chance on first re-use, so a one-pass scan of cold keys
            // cannot flush the referenced working set.
            referenced: false,
        };
        if self.entries.len() >= capacity {
            let slot = self.evict_one();
            self.ring[slot] = key.clone();
        } else {
            self.ring.push(key.clone());
        }
        self.entries.insert(key, entry);
    }

    /// Runs the clock hand until it claims a victim; removes the victim
    /// from the map and returns its (now free) ring slot.
    fn evict_one(&mut self) -> usize {
        debug_assert!(!self.ring.is_empty(), "eviction needs a resident entry");
        loop {
            if self.hand >= self.ring.len() {
                self.hand = 0;
            }
            let key = self.ring[self.hand].clone();
            let entry = self
                .entries
                .get_mut(key.as_ref())
                .expect("every ring key is resident");
            if entry.referenced {
                entry.referenced = false;
                self.hand += 1;
            } else {
                let slot = self.hand;
                self.entries.remove(key.as_ref());
                self.stats.evictions += 1;
                self.hand += 1;
                return slot;
            }
        }
    }

    /// Drops every entry and resets the eviction ring (statistics kept).
    fn clear_entries(&mut self) {
        self.entries.clear();
        self.ring.clear();
        self.hand = 0;
    }
}

/// First line of every [`PromptCache`] snapshot; bumped whenever the format
/// changes incompatibly.
pub const SNAPSHOT_HEADER: &str = "unidm-prompt-cache v1";

/// Why a snapshot could not be saved or restored.
#[derive(Debug)]
pub enum SnapshotError {
    /// Reading or writing the snapshot file failed.
    Io(std::io::Error),
    /// The snapshot text is not a well-formed `unidm-prompt-cache`
    /// document (wrong header, truncated entry, unparseable counts).
    Parse {
        /// 1-based line number the parser gave up on.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// The snapshot was taken over a different model, so its memoized
    /// completions would be wrong for this cache's inner model.
    ModelMismatch {
        /// The inner model of the cache being restored.
        expected: String,
        /// The model recorded in the snapshot.
        found: String,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::Parse { line, message } => {
                write!(f, "snapshot parse error at line {line}: {message}")
            }
            SnapshotError::ModelMismatch { expected, found } => write!(
                f,
                "snapshot model mismatch: cache wraps {expected:?} but snapshot was taken over \
                 {found:?}"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// A concurrent prompt → completion memo layered over any
/// [`LanguageModel`].
///
/// The cache is itself a `LanguageModel`, so it slots transparently under
/// [`UniDm`] or [`BatchRunner`]: repeated prompts — retrieval and parsing
/// calls shared by tasks on the same table, duplicate final claims —
/// are answered from memory without consuming model tokens.
///
/// # Keying and canonicalization
///
/// Lookups go through [`CanonicalPrompt::canonicalize`] at the cache's
/// [`CanonLevel`] (default [`CanonLevel::Verbatim`], i.e. exact
/// memoization). At higher levels a miss completes the *canonical* prompt
/// text rather than the raw variant, which makes the memo a pure function
/// of the canonical key: whichever worker populates an entry, the stored
/// completion is identical, so serial and parallel batches stay
/// bit-for-bit equal even when many raw prompts fold into one entry.
///
/// # The warm hit path allocates nothing
///
/// An already-canonical prompt (every re-lookup of a canonical text, and
/// every rendered prompt that needs no rewriting) is borrowed by the
/// canonicalizer, hashed in the same scan, probed against the shard map by
/// `&str`, refreshed by overwriting its recency stamp in place, and
/// answered by bumping the reference count of the stored
/// [`Arc<Completion>`]. No `String`, no node, no clone — zero heap
/// allocations end to end, which the bench suite asserts with a counting
/// allocator.
///
/// # Sharding and single-flight coalescing
///
/// Entries are distributed over [`PromptCache::shards`] independently
/// locked maps by key hash, cutting lock contention under
/// [`BatchRunner`] parallelism. Each shard also keeps an **in-flight
/// table**: when a miss is already being completed by another worker,
/// later arrivals of the same canonical key do not issue a second endpoint
/// call — they block on the leader's slot and share its completion
/// ([`CacheStats::coalesced`]). Statistics are counted per shard (exactly
/// — every counter update happens under its shard's lock) and aggregated
/// by [`PromptCache::stats`]; [`PromptCache::shard_stats`] exposes the
/// per-shard breakdown. Lookups never block on the underlying model except
/// when coalescing onto the same key: the shard lock is released while a
/// miss is being completed.
///
/// # Persistence
///
/// [`PromptCache::snapshot`] serializes the memo to a deterministic,
/// versioned text document (header [`SNAPSHOT_HEADER`], the inner model's
/// name, then one escaped prompt/completion/usage triplet per entry);
/// [`PromptCache::restore`] loads one back, re-canonicalizing and
/// re-sharding every entry under the receiving cache's configuration.
/// [`PromptCache::save_to`] / [`PromptCache::load_from`] do the same
/// through a file, which is how repeated eval runs start warm.
///
/// # Disk tier
///
/// [`PromptCache::with_store`] attaches a [`CacheStore`] — the merged,
/// versioned, append-only disk segment shared across scenarios — beneath
/// the shards. Tier-0 misses probe the store before reaching the model
/// (a disk hit populates tier 0 and costs zero model calls), and fresh
/// completions are offered back through the store's TinyLFU admission
/// filter, so a sequential scan cannot flush the disk-resident hot set.
/// Tier-0 hits never touch the store, preserving the zero-allocation
/// warm-hit path, and disk traffic is accounted separately in
/// [`StoreStats`] so [`CacheStats`] exactness is unaffected. The v1 text
/// snapshots remain readable; [`CacheStore::import_v1`] migrates them.
///
/// # Determinism and accounting
///
/// The deterministic substrate returns the same completion for the same
/// prompt, so serving a memoized (or coalesced) completion changes nothing
/// about answers or per-run usage — only about what the *inner* model
/// actually processed. Cached completions report the usage of the original
/// call, which keeps per-run accounting via [`unidm_llm::UsageMeter`]
/// identical with and without the cache; the inner model's own counter
/// only grows on leader misses, and the difference is tracked as
/// [`CacheStats::tokens_saved`]. For a fixed workload,
/// [`CacheStats::misses`] equals the number of unique canonical keys
/// completed — exactly, under every interleaving — because the in-flight
/// table guarantees one leader per key.
///
/// # Examples
///
/// ```
/// use unidm::{CanonLevel, PromptCache};
/// use unidm_llm::{LanguageModel, LlmProfile, MockLlm};
/// use unidm_world::World;
///
/// let world = World::generate(42);
/// let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), 1);
/// let cache = PromptCache::unbounded(&llm)
///     .with_shards(4)
///     .with_canonicalization(CanonLevel::Whitespace);
///
/// let a = cache.complete("The quick  brown fox").unwrap();
/// let b = cache.complete("The quick brown fox").unwrap(); // whitespace variant: hit
/// assert_eq!(a, b);
/// assert_eq!(cache.stats().hits, 1);
/// assert_eq!(cache.stats().tokens_saved, a.usage.total());
/// ```
pub struct PromptCache<'a> {
    inner: &'a dyn LanguageModel,
    capacity: usize,
    shard_capacity: usize,
    level: CanonLevel,
    single_flight: bool,
    shards: Box<[Mutex<CacheInner>]>,
    /// Cache-wide monotonic use counter: stamps are comparable across
    /// shards, so LRU order is global (snapshot compaction relies on it).
    clock: AtomicU64,
    /// Optional disk tier ([`CacheStore`]): tier-0 misses probe it before
    /// reaching the model, and fresh completions are offered back through
    /// its admission filter. The tier-0 hit path never touches it, so the
    /// zero-allocation warm hit is unchanged.
    store: Option<CacheStore>,
}

impl std::fmt::Debug for PromptCache<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PromptCache")
            .field("inner", &self.inner.name())
            .field("capacity", &self.capacity)
            .field("shards", &self.shards.len())
            .field("level", &self.level)
            .field("stats", &self.stats())
            .field("store", &self.store.as_ref().map(|s| s.path()))
            .finish()
    }
}

/// Default shard count: enough to keep eight batch workers off each
/// other's locks without fragmenting small caches.
const DEFAULT_SHARDS: usize = 8;

/// The shard count new caches start with: the `UNIDM_SHARDS` environment
/// variable when set to a positive integer (rounded up to a power of two —
/// this is how CI exercises shard-count sensitivity across the whole
/// suite) is authoritative; otherwise the count self-tunes to the machine,
/// [`std::thread::available_parallelism`] rounded up to a power of two and
/// clamped to `[`[`DEFAULT_SHARDS`]`, 64]` — wide boxes get proportionally
/// more locks, small caches never fragment below the historical default.
fn default_shards() -> usize {
    std::env::var("UNIDM_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|n| *n > 0)
        .map(usize::next_power_of_two)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get().next_power_of_two())
                .unwrap_or(DEFAULT_SHARDS)
                .clamp(DEFAULT_SHARDS, 64)
        })
}

fn build_shards(n: usize) -> Box<[Mutex<CacheInner>]> {
    (0..n).map(|_| Mutex::new(CacheInner::default())).collect()
}

/// Disarms the in-flight slot if the leader unwinds before filling it, so
/// a panicking worker cannot wedge every thread coalesced onto its key.
struct LeaderGuard<'c> {
    shard: &'c Mutex<CacheInner>,
    slot: &'c Arc<InFlight>,
    text: &'c str,
    armed: bool,
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let mut state = self.shard.lock().unwrap_or_else(PoisonError::into_inner);
        state.inflight.remove(self.text);
        drop(state);
        self.slot.abandon();
    }
}

impl<'a> PromptCache<'a> {
    /// Creates a cache holding at most `capacity` completions (LRU
    /// eviction), split across the default shard count (the
    /// `UNIDM_SHARDS` environment variable when set; otherwise
    /// self-tuned from [`std::thread::available_parallelism`], at least
    /// 8).
    ///
    /// The capacity budget is divided evenly across shards (each shard
    /// gets at least one slot), so with very small capacities the
    /// effective bound is `shards × 1`; use [`PromptCache::with_shards`]
    /// to control the split. [`PromptCache::snapshot`] re-applies the
    /// *total* capacity, so persisted state never exceeds it even when
    /// per-shard rounding lets the in-memory maps run slightly over.
    pub fn new(inner: &'a dyn LanguageModel, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let mut cache = PromptCache {
            inner,
            capacity,
            shard_capacity: 0,
            level: CanonLevel::Verbatim,
            single_flight: true,
            shards: build_shards(default_shards()),
            clock: AtomicU64::new(0),
            store: None,
        };
        cache.shard_capacity = cache.capacity_per_shard();
        cache
    }

    /// Creates a cache that never evicts.
    pub fn unbounded(inner: &'a dyn LanguageModel) -> Self {
        Self::new(inner, usize::MAX)
    }

    /// Sets the shard count (rounded up to a power of two, minimum 1) and
    /// redistributes any existing entries. Builder-style; intended at
    /// construction time.
    pub fn with_shards(mut self, shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        let entries = self.drain_entries();
        // Statistics survive the rebuild: fold the old shard counters into
        // the first new shard (aggregate stats stay exact; the per-shard
        // attribution of pre-rebuild traffic is no longer meaningful).
        let stats = self.stats();
        self.shards = build_shards(n);
        self.shard_capacity = self.capacity_per_shard();
        self.lock_shard(&self.shards[0]).stats = stats;
        self.readmit(entries);
        self
    }

    /// Sets the canonicalization level and re-keys any existing entries.
    /// Builder-style; intended at construction time.
    pub fn with_canonicalization(mut self, level: CanonLevel) -> Self {
        let entries = self.drain_entries();
        self.level = level;
        self.readmit(entries);
        self
    }

    /// Enables or disables cache-level single-flight coalescing (enabled
    /// by default). Builder-style; intended at construction time.
    ///
    /// Disable it when the cache sits above a pipelined
    /// [`crate::Dispatcher`]: dispatcher-registered workers must never
    /// block outside the dispatcher, and a single-flight waiter blocks in
    /// a cache slot the dispatcher's quiescence detection cannot see. The
    /// dispatcher performs its own per-prompt single-flight and memoizes
    /// successes, so endpoint calls still equal unique canonical keys —
    /// the coalescing just happens one layer lower. With single-flight
    /// off, [`CacheStats::misses`] counts every concurrent co-leader of a
    /// key rather than exactly one leader per key, so its exactness
    /// guarantee only holds in the default mode (or one layer lower, in
    /// [`crate::BackendStats`]).
    pub fn with_single_flight(mut self, single_flight: bool) -> Self {
        self.single_flight = single_flight;
        self
    }

    /// Attaches a disk tier ([`CacheStore`]) beneath the in-memory shards.
    /// Builder-style; intended at construction time.
    ///
    /// Tier-0 misses probe the store before reaching the model (a disk hit
    /// populates tier 0 and never calls the model), and fresh completions
    /// are offered back to the store through its TinyLFU admission filter.
    /// Tier-0 hits never touch the store, so the zero-allocation warm hit
    /// is unchanged. Disk-tier traffic is accounted in [`StoreStats`]
    /// (via [`PromptCache::store_stats`]), not [`CacheStats`]: the two
    /// tiers keep independent exact counters, and a disk hit counts as a
    /// tier-0 miss exactly like any other completion the cache had to
    /// fetch from below.
    pub fn with_store(mut self, store: CacheStore) -> Self {
        self.store = Some(store);
        self
    }

    /// The attached disk tier, if any.
    pub fn store(&self) -> Option<&CacheStore> {
        self.store.as_ref()
    }

    /// A snapshot of the disk tier's counters, if a store is attached.
    pub fn store_stats(&self) -> Option<StoreStats> {
        self.store.as_ref().map(|s| s.stats())
    }

    /// Whether cache-level single-flight coalescing is enabled.
    pub fn single_flight(&self) -> bool {
        self.single_flight
    }

    /// The canonicalization level lookups run at.
    pub fn level(&self) -> CanonLevel {
        self.level
    }

    /// The number of independently locked shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The total completion capacity across all shards.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn capacity_per_shard(&self) -> usize {
        if self.capacity == usize::MAX {
            usize::MAX
        } else {
            self.capacity.div_ceil(self.shards.len()).max(1)
        }
    }

    /// Resolves a tier-0 miss from the layers below: the disk tier first
    /// (a hit there never calls the model), then the inner model, offering
    /// a fresh completion back to the store's admission filter. Runs
    /// without any shard lock held.
    fn fetch_below(&self, text: &str) -> Result<Arc<Completion>, LlmError> {
        if let Some(store) = &self.store {
            if let Some(completion) = store.get(text) {
                return Ok(completion);
            }
        }
        let result = self.inner.complete(text);
        if let (Some(store), Ok(completion)) = (&self.store, &result) {
            store.offer(text, completion);
        }
        result
    }

    fn shard_for_hash(&self, hash: u64) -> &Mutex<CacheInner> {
        // Shard count is a power of two, so masking the stable FNV hash
        // picks a shard uniformly.
        let index = (hash as usize) & (self.shards.len() - 1);
        &self.shards[index]
    }

    /// Locks a shard, recovering from poison: the shard state is a plain
    /// map plus counters, valid at every instruction boundary, so a worker
    /// that panicked while holding the lock cannot leave it corrupt — and
    /// must not wedge every other worker of the batch.
    fn lock_shard<'s>(&self, shard: &'s Mutex<CacheInner>) -> MutexGuard<'s, CacheInner> {
        shard.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The next globally ordered recency stamp.
    fn next_stamp(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Removes every entry, returning them sorted by canonical prompt (so
    /// rebuilds are deterministic). Statistics are kept.
    fn drain_entries(&mut self) -> Vec<(Arc<str>, Arc<Completion>)> {
        let mut entries = Vec::new();
        for shard in self.shards.iter() {
            let mut state = self.lock_shard(shard);
            entries.extend(
                state
                    .entries
                    .drain()
                    .map(|(text, entry)| (text, entry.completion)),
            );
            state.ring.clear();
            state.hand = 0;
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries
    }

    /// Re-inserts drained entries under the current level/shard layout.
    fn readmit(&self, entries: Vec<(Arc<str>, Arc<Completion>)>) {
        for (text, completion) in entries {
            self.admit(&text, completion);
        }
    }

    /// Inserts a known-good completion under the canonical key of
    /// `prompt` without touching hit/miss counters.
    fn admit(&self, prompt: &str, completion: Arc<Completion>) {
        let canonical = CanonicalPrompt::canonicalize(prompt, self.level);
        let shard = self.shard_for_hash(canonical.hash64());
        let stamp = self.next_stamp();
        self.lock_shard(shard)
            .insert(canonical.text(), completion, self.shard_capacity, stamp);
    }

    /// A snapshot of the aggregated hit/miss/eviction statistics.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in self.shards.iter() {
            total.merge(self.lock_shard(shard).stats);
        }
        total
    }

    /// Per-shard statistics, in shard order.
    pub fn shard_stats(&self) -> Vec<CacheStats> {
        self.shards
            .iter()
            .map(|shard| self.lock_shard(shard).stats)
            .collect()
    }

    /// The canonical prompt texts currently memoized, sorted — the keys a
    /// warm lookup hits verbatim. Deterministic for a deterministic
    /// workload, whatever the shard layout.
    pub fn canonical_prompts(&self) -> Vec<String> {
        let mut texts: Vec<String> = self
            .shards
            .iter()
            .flat_map(|shard| {
                self.lock_shard(shard)
                    .entries
                    .keys()
                    .map(|text| text.to_string())
                    .collect::<Vec<_>>()
            })
            .collect();
        texts.sort();
        texts
    }

    /// Number of completions currently held across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| self.lock_shard(shard).entries.len())
            .sum()
    }

    /// Whether the cache holds no completions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries (statistics are kept).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            self.lock_shard(shard).clear_entries();
        }
    }

    /// Serializes the memo to the versioned snapshot text format,
    /// compacted to the cache's configured capacity.
    ///
    /// The output is deterministic (entries sorted by canonical prompt)
    /// and records the inner model's name, so [`PromptCache::restore`]
    /// can refuse snapshots taken over a different model. Statistics are
    /// not persisted — a restored cache starts with fresh counters.
    ///
    /// Compaction keeps the most-recently-used `capacity` entries: recency
    /// stamps come from one cache-wide clock, so LRU order is global even
    /// across shards. This is what bounds snapshot files across repeated
    /// scenario runs — per-shard capacity rounding can let the in-memory
    /// maps briefly exceed the total budget, but persisted state never
    /// does. (An unbounded cache persists everything.)
    pub fn snapshot(&self) -> String {
        let mut entries: Vec<(Arc<str>, Arc<Completion>, u64)> = Vec::new();
        for shard in self.shards.iter() {
            let state = self.lock_shard(shard);
            entries.extend(
                state
                    .entries
                    .iter()
                    .map(|(text, entry)| (text.clone(), entry.completion.clone(), entry.stamp)),
            );
        }
        if self.capacity != usize::MAX && entries.len() > self.capacity {
            entries.sort_by_key(|entry| std::cmp::Reverse(entry.2));
            entries.truncate(self.capacity);
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = format!(
            "{SNAPSHOT_HEADER}\nmodel {}\nentries {}\n",
            self.inner.name(),
            entries.len()
        );
        for (prompt, completion, _) in &entries {
            out.push_str("p ");
            out.push_str(&escape(prompt));
            out.push_str("\nc ");
            out.push_str(&escape(&completion.text));
            out.push('\n');
            out.push_str(&format!(
                "u {} {}\n",
                completion.usage.prompt_tokens, completion.usage.completion_tokens
            ));
        }
        out
    }

    /// Restores entries from snapshot text produced by
    /// [`PromptCache::snapshot`], returning how many were admitted.
    ///
    /// Entries are re-canonicalized and re-sharded under this cache's
    /// configuration, so a snapshot can be loaded into a cache with a
    /// different shard count or canonicalization level. Restoring does not
    /// count as hits or misses; subsequent lookups of restored prompts are
    /// hits served before any model call.
    ///
    /// Restoration is atomic with respect to errors: the document is
    /// parsed in full before anything is admitted, so a truncated,
    /// garbled, wrong-version or wrong-model snapshot leaves the cache
    /// exactly as it was.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Parse`] for malformed documents and
    /// [`SnapshotError::ModelMismatch`] when the snapshot was taken over a
    /// model with a different name.
    pub fn restore(&self, snapshot: &str) -> Result<usize, SnapshotError> {
        let parse_err = |line: usize, message: &str| SnapshotError::Parse {
            line,
            message: message.to_string(),
        };
        let mut lines = snapshot.lines();
        let header = lines.next().ok_or_else(|| parse_err(1, "empty snapshot"))?;
        if header != SNAPSHOT_HEADER {
            return Err(parse_err(
                1,
                &format!("expected header {SNAPSHOT_HEADER:?}"),
            ));
        }
        let model_line = lines
            .next()
            .ok_or_else(|| parse_err(2, "missing model line"))?;
        let found = model_line
            .strip_prefix("model ")
            .ok_or_else(|| parse_err(2, "expected `model <name>`"))?;
        if found != self.inner.name() {
            return Err(SnapshotError::ModelMismatch {
                expected: self.inner.name().to_string(),
                found: found.to_string(),
            });
        }
        let count_line = lines
            .next()
            .ok_or_else(|| parse_err(3, "missing entries line"))?;
        let declared: usize = count_line
            .strip_prefix("entries ")
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| parse_err(3, "expected `entries <count>`"))?;
        // Parse every declared entry before admitting anything, so a
        // malformed tail cannot leave the cache half-restored.
        let mut parsed: Vec<(String, Completion)> = Vec::new();
        for index in 0..declared {
            let entry_line = 4 + index * 3;
            let p_line = lines
                .next()
                .ok_or_else(|| parse_err(entry_line, "truncated entry"))?;
            let prompt = p_line
                .strip_prefix("p ")
                .ok_or_else(|| parse_err(entry_line, "expected `p <prompt>`"))?;
            let c_line = lines
                .next()
                .ok_or_else(|| parse_err(entry_line + 1, "truncated entry (missing completion)"))?;
            let text = c_line
                .strip_prefix("c ")
                .ok_or_else(|| parse_err(entry_line + 1, "expected `c <completion>`"))?;
            let u_line = lines
                .next()
                .ok_or_else(|| parse_err(entry_line + 2, "truncated entry (missing usage)"))?;
            let usage = u_line
                .strip_prefix("u ")
                .and_then(|u| u.split_once(' '))
                .and_then(|(p, c)| Some((p.parse().ok()?, c.parse().ok()?)))
                .map(|(prompt_tokens, completion_tokens)| Usage {
                    prompt_tokens,
                    completion_tokens,
                })
                .ok_or_else(|| {
                    parse_err(
                        entry_line + 2,
                        "expected `u <prompt-tokens> <completion-tokens>`",
                    )
                })?;
            parsed.push((
                unescape(prompt),
                Completion {
                    text: unescape(text),
                    usage,
                },
            ));
        }
        if lines.next().is_some() {
            return Err(parse_err(
                4 + declared * 3,
                "trailing data after the declared entries",
            ));
        }
        let admitted = parsed.len();
        for (prompt, completion) in parsed {
            self.admit(&prompt, Arc::new(completion));
        }
        Ok(admitted)
    }

    /// Writes [`PromptCache::snapshot`] to `path`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] when the file cannot be written.
    pub fn save_to(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        std::fs::write(path, self.snapshot())?;
        Ok(())
    }

    /// Restores a snapshot file written by [`PromptCache::save_to`],
    /// returning how many entries were admitted.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] when the file cannot be read, plus every
    /// error [`PromptCache::restore`] can produce.
    pub fn load_from(&self, path: impl AsRef<Path>) -> Result<usize, SnapshotError> {
        let text = std::fs::read_to_string(path)?;
        self.restore(&text)
    }
}

/// Escapes a prompt or completion for the line-oriented snapshot format.
fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            _ => out.push(ch),
        }
    }
    out
}

/// Inverse of [`escape`]. Unknown escapes pass through verbatim.
fn unescape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars();
    while let Some(ch) = chars.next() {
        if ch != '\\' {
            out.push(ch);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('\\') => out.push('\\'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

impl LanguageModel for PromptCache<'_> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn complete(&self, prompt: &str) -> Result<Arc<Completion>, LlmError> {
        let canonical = CanonicalPrompt::canonicalize(prompt, self.level);
        let completion = self.complete_canonical(&canonical)?;
        // A v2 fold that reordered this request replays the canonical
        // completion permutation-corrected into the request's own element
        // order (identity-ordered requests — every canonical prompt, so
        // the whole warm fast path — skip this branch entirely).
        Ok(match canonical.replay() {
            None => completion,
            Some(fold) => Arc::new(fold.adapt(&completion)),
        })
    }

    fn usage(&self) -> Usage {
        // Tokens the inner model actually processed; cache hits do not
        // appear here. Per-run attribution happens in `UniDm::run`.
        self.inner.usage()
    }

    fn reset_usage(&self) {
        self.inner.reset_usage();
    }

    fn context_window(&self) -> usize {
        self.inner.context_window()
    }
}

impl PromptCache<'_> {
    /// Completes the canonical text of `canonical` through the tiered
    /// cache: tier-0 hit, single-flight coalescing, disk-tier probe, and
    /// finally the model. The memoized entry is always the canonical
    /// completion — replay adaptation happens in
    /// [`LanguageModel::complete`] above, outside every lock.
    fn complete_canonical(
        &self,
        canonical: &CanonicalPrompt<'_>,
    ) -> Result<Arc<Completion>, LlmError> {
        let shard = self.shard_for_hash(canonical.hash64());
        let text = canonical.text();
        if !self.single_flight {
            // Coalescing disabled (the layer below — a pipelined
            // dispatcher — handles it): hit or straight to the model, no
            // in-flight slot a registered worker could block on.
            {
                let stamp = self.next_stamp();
                let mut state = self.lock_shard(shard);
                if let Some(entry) = state.entries.get_mut(text) {
                    entry.stamp = stamp;
                    entry.referenced = true;
                    let completion = entry.completion.clone();
                    state.stats.hits += 1;
                    state.stats.tokens_saved += completion.usage.total();
                    return Ok(completion);
                }
                state.stats.misses += 1;
            }
            let result = self.fetch_below(text);
            let stamp = self.next_stamp();
            if let Ok(completion) = &result {
                let mut state = self.lock_shard(shard);
                state.insert(text, completion.clone(), self.shard_capacity, stamp);
            }
            return result;
        }
        let slot = loop {
            // One locked section decides hit / coalesce / lead; everything
            // slow (waiting, completing) happens outside it.
            let waiting = {
                let stamp = self.next_stamp();
                let mut state = self.lock_shard(shard);
                if let Some(entry) = state.entries.get_mut(text) {
                    entry.stamp = stamp;
                    entry.referenced = true;
                    let completion = entry.completion.clone();
                    state.stats.hits += 1;
                    state.stats.tokens_saved += completion.usage.total();
                    return Ok(completion);
                }
                match state.inflight.get(text) {
                    Some(slot) => {
                        let slot = slot.clone();
                        state.stats.coalesced += 1;
                        slot
                    }
                    None => {
                        let slot = InFlight::new();
                        state.inflight.insert(text.into(), slot.clone());
                        state.stats.misses += 1;
                        break slot;
                    }
                }
            };
            match waiting.wait() {
                Some(Ok(completion)) => {
                    // The leader's endpoint call covered this lookup too:
                    // account the share like a hit's saving.
                    self.lock_shard(shard).stats.tokens_saved += completion.usage.total();
                    return Ok(completion);
                }
                Some(Err(e)) => return Err(e),
                // Leader panicked before publishing: retry the lookup (one
                // of the waiters becomes the new leader).
                None => continue,
            }
        };
        // Leader: complete the canonical text without holding any lock —
        // concurrent workers on *other* keys must not serialize on the
        // model. The guard un-wedges waiters if this unwinds.
        let mut guard = LeaderGuard {
            shard,
            slot: &slot,
            text,
            armed: true,
        };
        let result = self.fetch_below(text);
        let stamp = self.next_stamp();
        {
            let mut state = self.lock_shard(shard);
            if let Ok(completion) = &result {
                state.insert(text, completion.clone(), self.shard_capacity, stamp);
            }
            // Errors are not memoized: clearing the slot lets the next
            // lookup retry the model.
            state.inflight.remove(text);
        }
        guard.armed = false;
        slot.fill(result.clone());
        result
    }
}

/// What the pre-dispatch planner and the work-stealing pool did for one
/// batch, alongside the per-task results.
#[derive(Debug)]
pub struct BatchReport {
    /// One result per task, in task order — bit-for-bit identical to a
    /// serial loop over [`UniDm::run`].
    pub results: Vec<Result<RunOutput, UniDmError>>,
    /// Distinct task groups the planner found (each executed exactly
    /// once).
    pub unique_tasks: usize,
    /// Tasks that duplicated an earlier task byte-for-byte and received a
    /// copy of its representative's output instead of executing.
    pub coalesced_tasks: usize,
    /// Range-steal operations the work-stealing scheduler performed
    /// (0 in serial runs; timing-dependent under parallelism).
    pub steals: usize,
}

/// What [`BatchRunner::run_streaming`] planned and executed across all
/// partitions. The dedup counters are exact-equal to the
/// [`BatchReport`] counters [`BatchRunner::run_report`] would produce for
/// the same task sequence, whatever the partition size — duplicates are
/// coalesced across partition boundaries through a global memo.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamReport {
    /// Total tasks consumed from the source.
    pub tasks: usize,
    /// Partitions the task stream was split into.
    pub partitions: usize,
    /// Distinct tasks that actually executed (equals
    /// [`BatchReport::unique_tasks`] over the whole sequence).
    pub unique_tasks: usize,
    /// Tasks answered from an earlier identical task's output without
    /// executing (equals [`BatchReport::coalesced_tasks`]).
    pub coalesced_tasks: usize,
    /// Range-steal operations across all partitions (timing-dependent
    /// under parallelism, like [`BatchReport::steals`]).
    pub steals: usize,
}

/// A work-stealing task queue over indices `0..total`: the index space is
/// pre-split into one contiguous range per worker, each packed into an
/// `AtomicU64` as `(cursor, end)`. Owners claim single indices from their
/// own range with a CAS; a worker whose range runs dry steals the upper
/// half of the fattest remaining victim range. Every index is claimed
/// exactly once under any interleaving, so results stay deterministic; the
/// stealing only changes *which worker* executes an index.
struct StealQueue {
    ranges: Vec<AtomicU64>,
    steals: AtomicUsize,
}

#[inline]
fn pack(cursor: u32, end: u32) -> u64 {
    (u64::from(cursor) << 32) | u64::from(end)
}

#[inline]
fn unpack(packed: u64) -> (u32, u32) {
    ((packed >> 32) as u32, packed as u32)
}

impl StealQueue {
    /// Splits `total` indices evenly across `workers` ranges.
    fn new(total: usize, workers: usize) -> StealQueue {
        assert!(total <= u32::MAX as usize, "batch too large for the queue");
        let total = total as u32;
        let workers = workers.max(1) as u32;
        let base = total / workers;
        let extra = total % workers;
        let mut ranges = Vec::with_capacity(workers as usize);
        let mut start = 0u32;
        for w in 0..workers {
            let len = base + u32::from(w < extra);
            ranges.push(AtomicU64::new(pack(start, start + len)));
            start += len;
        }
        StealQueue {
            ranges,
            steals: AtomicUsize::new(0),
        }
    }

    /// Claims the next index for worker `me`: from its own range while one
    /// lasts, then by stealing the upper half of the fattest victim.
    /// `None` means no work was visible anywhere — the caller can exit
    /// (remaining indices, if any, are owned by live workers).
    fn claim(&self, me: usize) -> Option<usize> {
        loop {
            // Drain the worker's own range first: sequential indices keep
            // a worker on one contiguous slice of the batch.
            let own = &self.ranges[me];
            let mut packed = own.load(Ordering::Acquire);
            loop {
                let (cursor, end) = unpack(packed);
                if cursor >= end {
                    break;
                }
                match own.compare_exchange_weak(
                    packed,
                    pack(cursor + 1, end),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => return Some(cursor as usize),
                    Err(now) => packed = now,
                }
            }
            // Own range dry: pick the victim with the most remaining work.
            let mut best: Option<(usize, u32, u32)> = None;
            for (victim, range) in self.ranges.iter().enumerate() {
                if victim == me {
                    continue;
                }
                let (cursor, end) = unpack(range.load(Ordering::Acquire));
                if cursor < end && best.is_none_or(|(_, c, e)| end - cursor > e - c) {
                    best = Some((victim, cursor, end));
                }
            }
            let (victim, cursor, end) = best?;
            // Steal the upper half [mid, end); the victim keeps [cursor,
            // mid). A failed CAS means the victim's range moved — rescan.
            let mid = cursor + (end - cursor) / 2;
            if self.ranges[victim]
                .compare_exchange(
                    pack(cursor, end),
                    pack(cursor, mid),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                self.steals.fetch_add(1, Ordering::Relaxed);
                self.ranges[me].store(pack(mid, end), Ordering::Release);
            }
        }
    }
}

/// A parallel batch executor for [`UniDm`] runs.
///
/// Before anything executes, a **dedup planner** groups byte-identical
/// tasks: each run is a pure function of `(model, config, lake, task)`, so
/// one representative per group executes and every duplicate slot receives
/// a copy of its output — duplicate tasks cost zero model calls and zero
/// cache lookups. The representatives then fan out across a pool of scoped
/// worker threads sharing one model reference, scheduled by a
/// **work-stealing queue**: each worker owns a contiguous range of the
/// unique tasks and steals half of the fattest remaining range when its
/// own runs dry, so a straggler range cannot serialize the tail of a
/// batch. Results come back in task order, each carrying its own
/// [`RunOutput::usage`] metered per run — never diffed from the model's
/// global counter — so the output is bit-for-bit identical to running the
/// same tasks serially, whatever the interleaving.
///
/// # Examples
///
/// ```
/// use unidm::{BatchRunner, PipelineConfig, Task};
/// use unidm_llm::{LlmProfile, MockLlm};
/// use unidm_tablestore::{DataLake, Table, Value};
/// use unidm_world::World;
///
/// let world = World::generate(42);
/// let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), 1);
/// let mut cities = Table::builder("cities").columns(["city", "country", "timezone"]).build();
/// cities.push_row(vec![
///     Value::text("Florence"), Value::text("Italy"), Value::text("Central European Time"),
/// ]).unwrap();
/// cities.push_row(vec![Value::text("Copenhagen"), Value::text("Denmark"), Value::Null]).unwrap();
/// let lake: DataLake = [cities].into_iter().collect();
///
/// let tasks = vec![Task::imputation("cities", 1, "timezone", "city")];
/// let serial = BatchRunner::new(&llm, PipelineConfig::paper_default()).with_workers(1);
/// let parallel = serial.with_workers(4);
/// assert_eq!(
///     serial.answers(&lake, &tasks),
///     parallel.answers(&lake, &tasks),
///     "scheduling must not change answers",
/// );
/// ```
#[derive(Clone, Copy)]
pub struct BatchRunner<'a> {
    llm: &'a dyn LanguageModel,
    config: PipelineConfig,
    workers: usize,
    dedup: bool,
    pipeline: Option<&'a Dispatcher<'a>>,
    partition_tasks: usize,
}

impl std::fmt::Debug for BatchRunner<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchRunner")
            .field("llm", &self.llm.name())
            .field("config", &self.config)
            .field("workers", &self.workers)
            .field("dedup", &self.dedup)
            .field("pipelined", &self.pipeline.is_some())
            .field("partition_tasks", &self.partition_tasks)
            .finish()
    }
}

/// Default tasks-per-partition window for [`BatchRunner::run_streaming`].
pub const DEFAULT_PARTITION_TASKS: usize = 256;

/// The worker count new runners start with: the `UNIDM_WORKERS`
/// environment variable when set to a positive integer is authoritative
/// (no cap — an override means the operator knows the machine); otherwise
/// one worker per available CPU, capped at 16 — the pipeline is
/// compute-light, so past that point more threads only add contention on
/// the shared model.
fn default_workers() -> usize {
    std::env::var("UNIDM_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|n| *n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(16)
        })
}

impl<'a> BatchRunner<'a> {
    /// Creates a runner with the self-tuned worker count (`UNIDM_WORKERS`
    /// when set; otherwise one per available CPU, capped at 16) and the
    /// dedup planner enabled.
    pub fn new(llm: &'a dyn LanguageModel, config: PipelineConfig) -> Self {
        BatchRunner {
            llm,
            config,
            workers: default_workers(),
            dedup: true,
            pipeline: None,
            partition_tasks: DEFAULT_PARTITION_TASKS,
        }
    }

    /// Overrides the tasks-per-partition window
    /// [`BatchRunner::run_streaming`] plans and dispatches at a time
    /// (default [`DEFAULT_PARTITION_TASKS`], minimum 1). Smaller windows
    /// lower peak memory; larger windows give each dispatch wave more
    /// parallelism to chew on.
    pub fn with_partition_tasks(mut self, tasks: usize) -> Self {
        self.partition_tasks = tasks.max(1);
        self
    }

    /// The tasks-per-partition window streaming runs use.
    pub fn partition_tasks(&self) -> usize {
        self.partition_tasks
    }

    /// Overrides the worker count (`1` executes serially on the calling
    /// thread).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Enables or disables the pre-dispatch dedup planner (enabled by
    /// default). With it off, duplicate tasks execute individually — their
    /// results are still identical, they just pay for their own runs
    /// (modulo prompt-cache hits further down the stack).
    pub fn with_dedup(mut self, dedup: bool) -> Self {
        self.dedup = dedup;
        self
    }

    /// Runs the batch in **pipelined mode** against an event-driven
    /// [`Dispatcher`]: every worker registers with the dispatcher for the
    /// whole batch and claims the next unique task from a shared cursor
    /// the moment its previous one finishes — continuous admission into
    /// the dispatcher's in-flight window instead of whole-batch barriers.
    /// The dedup planner still runs first, so duplicate tasks never reach
    /// the dispatcher at all.
    ///
    /// The `llm` this runner drives must bottom out in `dispatcher` — that
    /// is how worker calls become reactor events. Any [`PromptCache`]
    /// layered between them must have cache-level single-flight disabled
    /// ([`PromptCache::with_single_flight`]): registered workers must
    /// never block outside the dispatcher, and the dispatcher coalesces
    /// duplicate prompts itself.
    pub fn with_pipeline(mut self, dispatcher: &'a Dispatcher<'a>) -> Self {
        self.pipeline = Some(dispatcher);
        self
    }

    /// The dispatcher batches run against in pipelined mode, if any.
    pub fn pipeline(&self) -> Option<&'a Dispatcher<'a>> {
        self.pipeline
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Whether the pre-dispatch dedup planner is enabled.
    pub fn dedup(&self) -> bool {
        self.dedup
    }

    /// The pipeline configuration the workers run with.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Runs every task over `lake`, returning one result per task in task
    /// order.
    ///
    /// Individual task failures do not abort the batch: each slot carries
    /// its own `Result`, mirroring what a serial loop over
    /// [`UniDm::run`] would collect.
    pub fn run(&self, lake: &DataLake, tasks: &[Task]) -> Vec<Result<RunOutput, UniDmError>> {
        self.run_report(lake, tasks).results
    }

    /// Like [`BatchRunner::run`], but also reports what the planner and
    /// the work-stealing scheduler did.
    pub fn run_report(&self, lake: &DataLake, tasks: &[Task]) -> BatchReport {
        // Pre-dispatch dedup: group byte-identical tasks (`Task: Eq +
        // Hash`) so each group executes exactly once. The plan depends
        // only on the task list, never on scheduling.
        let mut reps: Vec<usize> = Vec::new();
        let mut assign: Vec<usize> = Vec::with_capacity(tasks.len());
        if self.dedup {
            let mut positions: HashMap<&Task, usize> = HashMap::new();
            for (index, task) in tasks.iter().enumerate() {
                match positions.get(task) {
                    Some(&position) => assign.push(position),
                    None => {
                        positions.insert(task, reps.len());
                        assign.push(reps.len());
                        reps.push(index);
                    }
                }
            }
        } else {
            reps = (0..tasks.len()).collect();
            assign = (0..tasks.len()).collect();
        }
        let unique_tasks = reps.len();
        let coalesced_tasks = tasks.len() - unique_tasks;

        let (rep_results, steals) = self.execute_reps(lake, tasks, &reps);

        let results = if coalesced_tasks == 0 {
            rep_results
        } else {
            assign
                .iter()
                .map(|&position| rep_results[position].clone())
                .collect()
        };
        BatchReport {
            results,
            unique_tasks,
            coalesced_tasks,
            steals,
        }
    }

    /// Executes the representative tasks `reps` (indices into `tasks`) on
    /// the configured execution path — serial, pipelined-dispatcher, or
    /// work-stealing pool — returning one result per representative in
    /// representative order plus the steal count. Shared by the
    /// materialized ([`BatchRunner::run_report`]) and streaming
    /// ([`BatchRunner::run_streaming`]) drivers, which is what keeps their
    /// answers byte-identical.
    fn execute_reps(
        &self,
        lake: &DataLake,
        tasks: &[Task],
        reps: &[usize],
    ) -> (Vec<Result<RunOutput, UniDmError>>, usize) {
        let workers = self.workers.min(reps.len());
        if workers <= 1 {
            // Serial runs register too when pipelined: a lone long-lived
            // registration is equivalent to transient registration, and it
            // keeps the two modes symmetrical.
            let _registration = self.pipeline.map(|dispatcher| dispatcher.register());
            let unidm = UniDm::new(self.llm, self.config);
            (
                reps.iter()
                    .map(|&index| unidm.run(lake, &tasks[index]))
                    .collect::<Vec<_>>(),
                0,
            )
        } else if let Some(dispatcher) = self.pipeline {
            // Pipelined mode: no range ownership, no stealing — a single
            // shared cursor hands each worker the next unique task as soon
            // as it finishes the previous one, so a freshly ready task
            // flows into an open in-flight slot while stragglers are still
            // pending. Workers hold dispatcher registrations for the whole
            // batch, so the reactor only advances virtual time when every
            // worker is parked inside it (quiescence).
            let slots: Vec<OnceLock<Result<RunOutput, UniDmError>>> =
                reps.iter().map(|_| OnceLock::new()).collect();
            let cursor = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    let cursor = &cursor;
                    let slots = &slots;
                    let reps = &reps;
                    scope.spawn(move || {
                        let _registration = dispatcher.register();
                        let unidm = UniDm::new(self.llm, self.config);
                        loop {
                            let position = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(&index) = reps.get(position) else {
                                break;
                            };
                            let result = unidm.run(lake, &tasks[index]);
                            slots[position]
                                .set(result)
                                .expect("slot claimed exactly once");
                        }
                    });
                }
            });
            (
                slots
                    .into_iter()
                    .map(|slot| slot.into_inner().expect("every slot filled"))
                    .collect(),
                0,
            )
        } else {
            let slots: Vec<OnceLock<Result<RunOutput, UniDmError>>> =
                reps.iter().map(|_| OnceLock::new()).collect();
            let queue = StealQueue::new(reps.len(), workers);
            std::thread::scope(|scope| {
                for me in 0..workers {
                    let queue = &queue;
                    let slots = &slots;
                    let reps = &reps;
                    scope.spawn(move || {
                        let unidm = UniDm::new(self.llm, self.config);
                        while let Some(position) = queue.claim(me) {
                            let result = unidm.run(lake, &tasks[reps[position]]);
                            slots[position]
                                .set(result)
                                .expect("slot claimed exactly once");
                        }
                    });
                }
            });
            (
                slots
                    .into_iter()
                    .map(|slot| slot.into_inner().expect("every slot filled"))
                    .collect(),
                queue.steals.load(Ordering::Relaxed),
            )
        }
    }

    /// Runs a task **stream** partition-by-partition under bounded memory
    /// instead of materializing the full task vector: at most
    /// [`BatchRunner::partition_tasks`] tasks are resident at a time, each
    /// window is planned and dispatched on the same execution path as
    /// [`BatchRunner::run_report`] (serial, pipelined dispatcher, or
    /// work-stealing pool), and every result is handed to `sink` with its
    /// global task index, in task order, as soon as its partition
    /// completes.
    ///
    /// With the dedup planner enabled, duplicates are coalesced across
    /// partition boundaries through a memo of each distinct task's output,
    /// so the [`StreamReport`] counters — and every answer — are
    /// exact-equal to what `run_report` would produce for the same
    /// sequence. The memo grows with the number of *distinct* tasks; for
    /// strictly row-count-independent memory over a lake-sized stream,
    /// disable dedup ([`BatchRunner::with_dedup`]) and rely on the prompt
    /// cache below.
    pub fn run_streaming<I, F>(&self, lake: &DataLake, tasks: I, mut sink: F) -> StreamReport
    where
        I: IntoIterator<Item = Task>,
        F: FnMut(usize, Result<RunOutput, UniDmError>),
    {
        enum Plan {
            /// Answered by a previous partition's representative.
            Memo(Arc<Result<RunOutput, UniDmError>>),
            /// Position in this partition's representative list.
            Rep(usize),
        }

        let mut memo: HashMap<Task, Arc<Result<RunOutput, UniDmError>>> = HashMap::new();
        let mut source = tasks.into_iter();
        let mut buffer: Vec<Task> = Vec::with_capacity(self.partition_tasks);
        let mut next_index = 0usize;
        let mut partitions = 0usize;
        let mut unique_tasks = 0usize;
        let mut steals = 0usize;
        loop {
            buffer.clear();
            while buffer.len() < self.partition_tasks {
                match source.next() {
                    Some(task) => buffer.push(task),
                    None => break,
                }
            }
            if buffer.is_empty() {
                break;
            }
            partitions += 1;

            // Per-partition plan: same first-occurrence-is-representative
            // rule as the materialized planner, with the memo extending it
            // across partition boundaries.
            let mut plan: Vec<Plan> = Vec::with_capacity(buffer.len());
            let mut reps: Vec<usize> = Vec::new();
            if self.dedup {
                let mut local: HashMap<&Task, usize> = HashMap::new();
                for (i, task) in buffer.iter().enumerate() {
                    if let Some(cached) = memo.get(task) {
                        plan.push(Plan::Memo(cached.clone()));
                    } else if let Some(&position) = local.get(task) {
                        plan.push(Plan::Rep(position));
                    } else {
                        local.insert(task, reps.len());
                        plan.push(Plan::Rep(reps.len()));
                        reps.push(i);
                    }
                }
            } else {
                reps = (0..buffer.len()).collect();
                plan = (0..buffer.len()).map(Plan::Rep).collect();
            }
            unique_tasks += reps.len();

            let (rep_results, partition_steals) = self.execute_reps(lake, &buffer, &reps);
            steals += partition_steals;
            let rep_results: Vec<Arc<Result<RunOutput, UniDmError>>> =
                rep_results.into_iter().map(Arc::new).collect();
            if self.dedup {
                for (position, &i) in reps.iter().enumerate() {
                    memo.insert(buffer[i].clone(), rep_results[position].clone());
                }
            }

            for slot in plan {
                let result = match slot {
                    Plan::Memo(cached) => (*cached).clone(),
                    Plan::Rep(position) => (*rep_results[position]).clone(),
                };
                sink(next_index, result);
                next_index += 1;
            }
        }
        StreamReport {
            tasks: next_index,
            partitions,
            unique_tasks,
            coalesced_tasks: next_index - unique_tasks,
            steals,
        }
    }

    /// Like [`BatchRunner::run`], but flattens each result to its answer
    /// text (empty string on error) — the shape the accuracy harnesses
    /// consume.
    pub fn answers(&self, lake: &DataLake, tasks: &[Task]) -> Vec<String> {
        self.run(lake, tasks)
            .into_iter()
            .map(|r| r.map(|o| o.answer).unwrap_or_default())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unidm_llm::protocol::SerializedRecord;
    use unidm_llm::{LlmProfile, MockLlm};
    use unidm_synthdata::{imputation, tableqa};
    use unidm_world::World;

    fn setup() -> (World, MockLlm) {
        let world = World::generate(7);
        let llm = MockLlm::new(&world, LlmProfile::gpt4_turbo(), 1);
        (world, llm)
    }

    fn imputation_tasks(ds: &unidm_synthdata::ImputationDataset, n: usize) -> Vec<Task> {
        ds.targets
            .iter()
            .take(n)
            .map(|t| Task::imputation(ds.table.name(), t.row, "city", "name"))
            .collect()
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let (world, llm) = setup();
        let ds = imputation::restaurant(&world, 3, 30);
        let lake: DataLake = [ds.table.clone()].into_iter().collect();
        let tasks = imputation_tasks(&ds, 30);
        let config = PipelineConfig::paper_default();

        let serial = BatchRunner::new(&llm, config)
            .with_workers(1)
            .run(&lake, &tasks);
        let parallel = BatchRunner::new(&llm, config)
            .with_workers(6)
            .run(&lake, &tasks);

        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            let s = s.as_ref().expect("serial run ok");
            let p = p.as_ref().expect("parallel run ok");
            assert_eq!(s.answer, p.answer);
            assert_eq!(
                s.usage, p.usage,
                "per-run usage must not depend on scheduling"
            );
        }
    }

    #[test]
    fn per_run_usage_ignores_other_runs_on_shared_model() {
        // Run the same task twice against a model whose global counter
        // already moved: metered per-run usage must be identical, proving
        // it is not derived from the global counter.
        let (world, llm) = setup();
        let ds = imputation::restaurant(&world, 3, 5);
        let lake: DataLake = [ds.table.clone()].into_iter().collect();
        let unidm = UniDm::new(&llm, PipelineConfig::paper_default());
        let task = Task::imputation("restaurants", ds.targets[0].row, "city", "name");
        let first = unidm.run(&lake, &task).unwrap();
        llm.complete("unrelated traffic from another tenant")
            .unwrap();
        let second = unidm.run(&lake, &task).unwrap();
        assert_eq!(first.usage, second.usage);
        assert!(first.usage.total() > 0);
    }

    #[test]
    fn batch_preserves_order_and_isolates_failures() {
        let (world, llm) = setup();
        let ds = imputation::restaurant(&world, 3, 6);
        let lake: DataLake = [ds.table.clone()].into_iter().collect();
        let mut tasks = imputation_tasks(&ds, 6);
        // Poison the middle of the batch with a reference to a missing
        // table; its neighbours must still succeed.
        tasks.insert(3, Task::imputation("no_such_table", 0, "a", "b"));
        let results = BatchRunner::new(&llm, PipelineConfig::paper_default())
            .with_workers(4)
            .run(&lake, &tasks);
        assert_eq!(results.len(), 7);
        assert!(matches!(results[3], Err(UniDmError::Table(_))));
        for (i, r) in results.iter().enumerate() {
            if i != 3 {
                assert!(r.is_ok(), "slot {i} should have survived the poisoned slot");
            }
        }
    }

    #[test]
    fn dedup_planner_folds_duplicate_tasks() {
        let (world, llm) = setup();
        let ds = imputation::restaurant(&world, 3, 8);
        let lake: DataLake = [ds.table.clone()].into_iter().collect();
        let base = imputation_tasks(&ds, 8);
        // Interleave three copies of the workload: 24 tasks, 8 unique.
        let mut tasks = Vec::new();
        for i in 0..24 {
            tasks.push(base[i % 8].clone());
        }
        let config = PipelineConfig::paper_default();

        // Reference: planner off, serial.
        llm.reset_usage();
        let plain = BatchRunner::new(&llm, config)
            .with_workers(1)
            .with_dedup(false)
            .run(&lake, &tasks);
        let plain_tokens = llm.usage().total();

        llm.reset_usage();
        let report = BatchRunner::new(&llm, config)
            .with_workers(4)
            .run_report(&lake, &tasks);
        let dedup_tokens = llm.usage().total();

        assert_eq!(report.unique_tasks, 8);
        assert_eq!(report.coalesced_tasks, 16);
        assert_eq!(report.results.len(), 24);
        for (a, b) in plain.iter().zip(&report.results) {
            let a = a.as_ref().unwrap();
            let b = b.as_ref().unwrap();
            assert_eq!(a.answer, b.answer, "copied results must be identical");
            assert_eq!(a.usage, b.usage, "copied usage must be identical");
        }
        assert_eq!(
            dedup_tokens * 3,
            plain_tokens,
            "deduped batch pays for each unique task exactly once"
        );
    }

    #[test]
    fn pipelined_batch_matches_serial_and_accounts_exactly() {
        let (world, llm) = setup();
        let ds = imputation::restaurant(&world, 3, 20);
        let lake: DataLake = [ds.table.clone()].into_iter().collect();
        let tasks = imputation_tasks(&ds, 20);
        let config = PipelineConfig::paper_default();

        let reference = BatchRunner::new(&llm, config)
            .with_workers(1)
            .answers(&lake, &tasks);

        let backend = crate::BackendConfig::resilient(7)
            .without_breaker()
            .with_pipelined();
        let dispatcher = Dispatcher::new(&llm, backend);
        let cache = PromptCache::unbounded(&dispatcher).with_single_flight(false);
        let report = BatchRunner::new(&cache, config)
            .with_workers(4)
            .with_pipeline(&dispatcher)
            .run_report(&lake, &tasks);
        let answers: Vec<String> = report
            .results
            .iter()
            .map(|r| r.as_ref().unwrap().answer.clone())
            .collect();
        assert_eq!(
            answers, reference,
            "pipelined continuous admission must not change answers"
        );
        assert_eq!(report.steals, 0, "pipelined mode does not range-steal");

        // Exact accounting through the stack: every cache miss became one
        // dispatcher call, and every call either launched a fresh request
        // or coalesced onto a pending/memoized one — nothing double-fires.
        let stats = dispatcher.stats();
        assert_eq!(stats.calls, stats.attempts + stats.dispatch_coalesced);
        assert_eq!(stats.calls as usize, cache.stats().misses);
        assert!(stats.attempts > 0);
        assert_eq!(stats.failures, 0);
    }

    #[test]
    fn cache_without_single_flight_still_hits_and_skips_memoizing_errors() {
        let (_, llm) = setup();
        let cache = PromptCache::unbounded(&llm).with_single_flight(false);
        assert!(!cache.single_flight());
        let a = cache.complete("The quick brown fox").unwrap();
        let b = cache.complete("The quick brown fox").unwrap();
        assert_eq!(a, b, "hit must return the memoized completion verbatim");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(llm.usage(), a.usage, "inner model completed exactly once");
        assert!(cache.complete("  ").is_err());
        assert!(cache.complete("  ").is_err(), "errors are not memoized");
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn runner_defaults_self_tune_from_the_machine() {
        let (_, llm) = setup();
        let runner = BatchRunner::new(&llm, PipelineConfig::paper_default());
        assert_eq!(runner.workers(), default_workers());
        assert!(runner.workers() >= 1);
        assert!(runner.pipeline().is_none());
    }

    #[test]
    fn steal_queue_claims_every_index_exactly_once() {
        for (total, workers) in [(0usize, 3usize), (1, 4), (7, 2), (64, 8), (100, 3)] {
            let queue = StealQueue::new(total, workers);
            let claimed: Vec<AtomicUsize> = (0..total).map(|_| AtomicUsize::new(0)).collect();
            std::thread::scope(|scope| {
                for me in 0..workers {
                    let queue = &queue;
                    let claimed = &claimed;
                    scope.spawn(move || {
                        while let Some(index) = queue.claim(me) {
                            claimed[index].fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            });
            for (index, count) in claimed.iter().enumerate() {
                assert_eq!(
                    count.load(Ordering::Relaxed),
                    1,
                    "index {index} of {total} over {workers} workers"
                );
            }
        }
    }

    #[test]
    fn cache_hits_repeated_prompts_and_saves_tokens() {
        let (_, llm) = setup();
        let cache = PromptCache::unbounded(&llm);
        let a = cache.complete("The quick brown fox").unwrap();
        assert_eq!(
            cache.stats(),
            CacheStats {
                misses: 1,
                ..CacheStats::default()
            }
        );
        let b = cache.complete("The quick brown fox").unwrap();
        assert_eq!(a, b, "hit must return the memoized completion verbatim");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.tokens_saved, a.usage.total());
        // The inner model processed the prompt exactly once.
        assert_eq!(llm.usage(), a.usage);
    }

    #[test]
    fn disk_tier_serves_cold_process_without_model_calls() {
        use crate::store::{CacheStore, StoreConfig};
        let dir = std::env::temp_dir().join(format!("udm-exec-tier-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.udmstore");
        let _ = std::fs::remove_file(&path);
        let (_, llm) = setup();

        // First process: misses go to the model and are offered to the
        // disk tier (admit-all below capacity).
        let warm = {
            let store = CacheStore::open(&path, llm.name(), StoreConfig::default()).unwrap();
            let cache = PromptCache::unbounded(&llm).with_store(store);
            let a = cache.complete("The quick brown fox").unwrap();
            let b = cache.complete("The quick brown fox").unwrap();
            assert_eq!(a, b);
            let stats = cache.store_stats().unwrap();
            assert_eq!(
                (stats.hits, stats.misses, stats.admitted),
                (0, 1, 1),
                "tier-0 hit must not touch the store"
            );
            a
        };
        let calls_after_first = llm.usage();

        // Second process (fresh tier 0, same file): the disk tier answers
        // and the model is never called.
        let store = CacheStore::open(&path, llm.name(), StoreConfig::default()).unwrap();
        let cache = PromptCache::unbounded(&llm).with_store(store);
        let replay = cache.complete("The quick brown fox").unwrap();
        assert_eq!(replay.text, warm.text);
        assert_eq!(replay.usage, warm.usage, "disk hit replays original usage");
        assert_eq!(
            llm.usage(),
            calls_after_first,
            "warm replay from disk uses zero model calls"
        );
        let stats = cache.stats();
        assert_eq!(
            (stats.hits, stats.misses),
            (0, 1),
            "a disk hit is a tier-0 miss: CacheStats stays tier-0-exact"
        );
        assert_eq!(cache.store_stats().unwrap().hits, 1);
        // The disk hit populated tier 0: the next lookup is a warm hit.
        let again = cache.complete("The quick brown fox").unwrap();
        assert_eq!(again, replay);
        assert_eq!(cache.stats().hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_evicts_least_recently_used() {
        let (_, llm) = setup();
        // One shard so the LRU policy is global and observable.
        let cache = PromptCache::new(&llm, 2).with_shards(1);
        cache.complete("prompt one").unwrap();
        cache.complete("prompt two").unwrap();
        // Touch "prompt one" so "prompt two" becomes the LRU victim.
        cache.complete("prompt one").unwrap();
        cache.complete("prompt three").unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // "one" and "three" hit; "two" was evicted and misses again.
        let before = cache.stats();
        cache.complete("prompt one").unwrap();
        cache.complete("prompt three").unwrap();
        cache.complete("prompt two").unwrap();
        let after = cache.stats();
        assert_eq!(after.hits - before.hits, 2);
        assert_eq!(after.misses - before.misses, 1);
    }

    #[test]
    fn eviction_is_second_chance_exact_and_deterministic() {
        let (_, llm) = setup();
        // One shard, capacity 4: the clock hand's sweep is observable.
        let cache = PromptCache::new(&llm, 4).with_shards(1);
        for p in ["alpha", "beta", "gamma", "delta"] {
            cache.complete(p).unwrap();
        }
        // Touch alpha: its reference bit buys one revolution of survival.
        cache.complete("alpha").unwrap();
        cache.complete("epsilon").unwrap();
        // Hand: alpha referenced (bit spent), beta unreferenced -> victim.
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(
            cache.canonical_prompts(),
            vec!["alpha", "delta", "epsilon", "gamma"],
            "beta is the second-chance victim"
        );
        // Touch gamma, insert another: hand clears gamma, claims delta.
        cache.complete("gamma").unwrap();
        cache.complete("zeta").unwrap();
        assert_eq!(cache.stats().evictions, 2);
        assert_eq!(
            cache.canonical_prompts(),
            vec!["alpha", "epsilon", "gamma", "zeta"],
            "delta is the next victim; referenced gamma survives"
        );

        // Exactness under a distinct-key scan: one eviction per insert
        // beyond capacity, the occupancy pinned at capacity — however
        // long the scan runs (the old min-stamp scan was O(entries) per
        // miss; the hand is O(1) amortized).
        let scan = PromptCache::new(&llm, 4).with_shards(1);
        for i in 0..100 {
            scan.complete(&format!("scan key {i}")).unwrap();
        }
        assert_eq!(scan.len(), 4);
        assert_eq!(scan.stats().evictions, 96, "exactly inserts - capacity");

        // Determinism: the victim sequence is a pure function of the
        // operation order.
        let replay = || {
            let cache = PromptCache::new(&llm, 4).with_shards(1);
            for i in 0..40 {
                cache.complete(&format!("det key {}", i % 11)).unwrap();
                if i % 3 == 0 {
                    cache
                        .complete(&format!("det key {}", (i + 1) % 11))
                        .unwrap();
                }
            }
            (cache.canonical_prompts(), cache.stats().evictions)
        };
        assert_eq!(replay(), replay(), "same ops, same survivors");
    }

    #[test]
    fn cache_propagates_model_errors() {
        let (_, llm) = setup();
        let cache = PromptCache::unbounded(&llm);
        assert!(cache.complete("  ").is_err());
        assert_eq!(cache.len(), 0, "errors must not be memoized");
        // The in-flight slot is cleared, so a retry reaches the model
        // again rather than deadlocking or caching the error.
        assert!(cache.complete("  ").is_err());
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn sharded_cache_distributes_entries_and_aggregates_stats() {
        let (_, llm) = setup();
        let cache = PromptCache::unbounded(&llm).with_shards(4);
        assert_eq!(cache.shards(), 4);
        for i in 0..32 {
            cache
                .complete(&format!("distinct prompt number {i}"))
                .unwrap();
        }
        for i in 0..32 {
            cache
                .complete(&format!("distinct prompt number {i}"))
                .unwrap();
        }
        let per_shard = cache.shard_stats();
        assert_eq!(per_shard.len(), 4);
        assert!(
            per_shard.iter().filter(|s| s.misses > 0).count() >= 2,
            "32 distinct prompts should spread over several shards: {per_shard:?}"
        );
        let mut folded = CacheStats::default();
        for s in &per_shard {
            folded.merge(*s);
        }
        assert_eq!(folded, cache.stats(), "aggregate must equal shard sum");
        assert_eq!((folded.hits, folded.misses), (32, 32));
        assert_eq!(cache.len(), 32);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let (_, llm) = setup();
        assert_eq!(PromptCache::unbounded(&llm).with_shards(3).shards(), 4);
        assert_eq!(PromptCache::unbounded(&llm).with_shards(1).shards(), 1);
        assert_eq!(PromptCache::unbounded(&llm).with_shards(0).shards(), 1);
        // The startup default honors UNIDM_SHARDS (the CI matrix sets it).
        assert_eq!(PromptCache::unbounded(&llm).shards(), default_shards());
        assert!(default_shards().is_power_of_two());
    }

    #[test]
    fn snapshot_compacts_to_capacity_in_global_lru_order() {
        let (_, llm) = setup();
        // Capacity 4 over 4 shards: per-shard rounding gives each shard a
        // slot, so the in-memory map can briefly hold more than 4 entries,
        // but the snapshot must compact to the 4 most recently used.
        let cache = PromptCache::new(&llm, 4).with_shards(4);
        for i in 0..8 {
            cache.complete(&format!("compaction prompt {i}")).unwrap();
        }
        // Refresh two early prompts so recency, not insertion order,
        // decides survival.
        cache.complete("compaction prompt 0").unwrap();
        cache.complete("compaction prompt 1").unwrap();
        let snapshot = cache.snapshot();
        let kept: Vec<&str> = snapshot
            .lines()
            .filter_map(|l| l.strip_prefix("p "))
            .collect();
        assert_eq!(kept.len(), 4, "snapshot bounded by total capacity");
        for p in ["compaction prompt 0", "compaction prompt 1"] {
            assert!(
                kept.contains(&p),
                "recently touched {p:?} must survive compaction: {kept:?}"
            );
        }
        // The compacted snapshot round-trips.
        let restored = PromptCache::new(&llm, 4).with_shards(1);
        assert_eq!(restored.restore(&snapshot).unwrap(), 4);
    }

    #[test]
    fn restore_is_atomic_on_malformed_input() {
        let (_, llm) = setup();
        let source = PromptCache::unbounded(&llm);
        source.complete("alpha").unwrap();
        source.complete("beta").unwrap();
        let snapshot = source.snapshot();

        // Truncate inside the second entry: nothing may be admitted.
        let truncated = snapshot.lines().take(6).collect::<Vec<_>>().join("\n");
        let target = PromptCache::unbounded(&llm);
        target.complete("pre-existing entry").unwrap();
        assert!(matches!(
            target.restore(&truncated),
            Err(SnapshotError::Parse { .. })
        ));
        assert_eq!(
            target.len(),
            1,
            "failed restore must not admit a partial prefix"
        );

        // Trailing garbage after the declared entries is rejected whole.
        let trailing = format!("{snapshot}unexpected trailing line\n");
        assert!(matches!(
            target.restore(&trailing),
            Err(SnapshotError::Parse { .. })
        ));
        assert_eq!(target.len(), 1);
    }

    #[test]
    fn rebuilding_shards_keeps_entries() {
        let (_, llm) = setup();
        let cache = PromptCache::unbounded(&llm);
        cache.complete("alpha").unwrap();
        cache.complete("beta").unwrap();
        cache.complete("alpha").unwrap();
        let stats_before = cache.stats();
        let cache = cache
            .with_shards(2)
            .with_canonicalization(CanonLevel::Whitespace);
        assert_eq!(cache.len(), 2, "entries survive reconfiguration");
        assert_eq!(
            cache.stats(),
            stats_before,
            "statistics survive reconfiguration"
        );
        let before = llm.usage();
        cache.complete("alpha").unwrap();
        assert_eq!(llm.usage(), before, "re-keyed entry still hits");
    }

    #[test]
    fn canonicalized_cache_folds_whitespace_variants() {
        let (_, llm) = setup();
        let cache = PromptCache::unbounded(&llm).with_canonicalization(CanonLevel::Whitespace);
        let a = cache.complete("The quick  brown fox").unwrap();
        let b = cache.complete(" The quick brown fox ").unwrap();
        assert_eq!(a, b);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn snapshot_restore_roundtrip_serves_hits_without_model_calls() {
        let (world, llm) = setup();
        let cache = PromptCache::unbounded(&llm);
        cache.complete("alpha prompt").unwrap();
        cache.complete("beta prompt\nwith a second line").unwrap();
        let snapshot = cache.snapshot();
        assert!(snapshot.starts_with(SNAPSHOT_HEADER));

        let fresh_llm = MockLlm::new(&world, LlmProfile::gpt4_turbo(), 1);
        let restored = PromptCache::unbounded(&fresh_llm).with_shards(2);
        assert_eq!(restored.restore(&snapshot).unwrap(), 2);
        assert_eq!(restored.len(), 2);
        let reply = restored
            .complete("beta prompt\nwith a second line")
            .unwrap();
        assert_eq!(
            fresh_llm.usage(),
            Usage::default(),
            "restored entry must answer before any model call"
        );
        assert_eq!(
            reply.text,
            cache
                .complete("beta prompt\nwith a second line")
                .unwrap()
                .text
        );
        assert_eq!(restored.stats().hits, 1);
    }

    #[test]
    fn snapshot_is_deterministic() {
        let (_, llm) = setup();
        let a = PromptCache::unbounded(&llm).with_shards(1);
        let b = PromptCache::unbounded(&llm).with_shards(8);
        for prompt in ["one", "two", "three"] {
            a.complete(prompt).unwrap();
            b.complete(prompt).unwrap();
        }
        assert_eq!(
            a.snapshot(),
            b.snapshot(),
            "snapshot must not depend on shard layout"
        );
    }

    #[test]
    fn restore_rejects_other_models_and_garbage() {
        let (world, llm) = setup();
        let cache = PromptCache::unbounded(&llm);
        cache.complete("alpha").unwrap();
        let snapshot = cache.snapshot();

        let other = MockLlm::new(&world, LlmProfile::gpt3_175b(), 1);
        let mismatched = PromptCache::unbounded(&other);
        assert!(matches!(
            mismatched.restore(&snapshot),
            Err(SnapshotError::ModelMismatch { .. })
        ));
        assert!(mismatched.is_empty());

        assert!(matches!(
            cache.restore("not a snapshot"),
            Err(SnapshotError::Parse { line: 1, .. })
        ));
        let truncated = snapshot.lines().take(4).collect::<Vec<_>>().join("\n");
        assert!(matches!(
            cache.restore(&truncated),
            Err(SnapshotError::Parse { .. })
        ));
    }

    #[test]
    fn escape_roundtrips_control_characters() {
        for text in [
            "plain",
            "two\nlines",
            "back\\slash",
            "\r\n mixed \\n literal",
        ] {
            assert_eq!(unescape(&escape(text)), text);
        }
    }

    #[test]
    fn cached_batch_same_answers_fewer_model_tokens() {
        let (world, llm) = setup();
        let ds = imputation::restaurant(&world, 3, 25);
        let lake: DataLake = [ds.table.clone()].into_iter().collect();
        let tasks = imputation_tasks(&ds, 25);
        let config = PipelineConfig::paper_default();

        llm.reset_usage();
        let plain = BatchRunner::new(&llm, config)
            .with_workers(4)
            .run(&lake, &tasks);
        let plain_tokens = llm.usage().total();

        llm.reset_usage();
        let cache = PromptCache::unbounded(&llm);
        let cached = BatchRunner::new(&cache, config)
            .with_workers(4)
            .run(&lake, &tasks);
        let cached_tokens = llm.usage().total();

        for (a, b) in plain.iter().zip(&cached) {
            assert_eq!(a.as_ref().unwrap().answer, b.as_ref().unwrap().answer);
        }
        let stats = cache.stats();
        assert!(
            stats.hits + stats.coalesced > 0,
            "tasks on one table must share prompts"
        );
        assert!(
            cached_tokens < plain_tokens,
            "cache should save model tokens: {cached_tokens} vs {plain_tokens}"
        );
    }

    #[test]
    fn concurrency_smoke_all_task_kinds_share_one_model() {
        let (world, llm) = setup();
        let imp = imputation::restaurant(&world, 3, 4);
        let qa = tableqa::medals(&world, 3, 8, 3);
        let docs = unidm_synthdata::extraction::nba_players(&world, 3);
        let lake: DataLake = [imp.table.clone(), qa.table.clone()].into_iter().collect();

        let rec = |pairs: &[(&str, &str)]| {
            SerializedRecord::new(
                pairs
                    .iter()
                    .map(|(a, v)| ((*a).to_string(), (*v).to_string()))
                    .collect(),
            )
        };
        let mut tasks = vec![
            Task::Transformation {
                examples: vec![
                    ("20000101".into(), "2000-01-01".into()),
                    ("19991231".into(), "1999-12-31".into()),
                ],
                input: "20210315".into(),
            },
            Task::ErrorDetection {
                table: "restaurants".into(),
                row: 0,
                attr: "city".into(),
            },
            Task::EntityResolution {
                a: rec(&[("name", "Blue Bottle"), ("city", "Oakland")]),
                b: rec(&[("name", "Blue Bottle Coffee"), ("city", "Oakland")]),
                pool: vec![(
                    rec(&[("name", "Ritual")]),
                    rec(&[("name", "Ritual Coffee")]),
                    true,
                )],
            },
            Task::JoinDiscovery {
                left_name: "fifa_ranking.country_abrv".into(),
                left_values: vec!["GER".into(), "ITA".into(), "FRA".into()],
                right_name: "countries.ISO".into(),
                right_values: vec!["GER".into(), "ITA".into(), "IND".into()],
            },
            Task::Extraction {
                document: docs.docs[0].text.clone(),
                attr: "height".into(),
            },
            Task::TableQa {
                table: "medals".into(),
                question: qa.questions[0].question.clone(),
            },
        ];
        tasks.extend(imputation_tasks(&imp, 4));

        let cache = PromptCache::new(&llm, 256);
        let runner = BatchRunner::new(&cache, PipelineConfig::paper_default()).with_workers(7);
        let serial = runner.with_workers(1).run(&lake, &tasks);
        let parallel = runner.run(&lake, &tasks);
        for (kind, (s, p)) in tasks
            .iter()
            .map(Task::kind)
            .zip(serial.iter().zip(&parallel))
        {
            let s = s
                .as_ref()
                .unwrap_or_else(|e| panic!("{kind:?} serial failed: {e}"));
            let p = p
                .as_ref()
                .unwrap_or_else(|e| panic!("{kind:?} parallel failed: {e}"));
            assert_eq!(
                s.answer, p.answer,
                "{kind:?} answer must not depend on scheduling"
            );
            assert_eq!(
                s.usage, p.usage,
                "{kind:?} usage must not depend on scheduling"
            );
        }
    }
}
