//! Parallel batch execution: a worker pool fanning [`UniDm`] runs over many
//! tasks, and a sharded, canonicalizing, persistable prompt cache
//! deduplicating repeated LLM calls.
//!
//! The paper's experiments (Tables 1–11) execute thousands of independent
//! pipeline runs per dataset. Two properties of the pipeline make batch
//! execution profitable:
//!
//! * **Independence** — each run is a pure function of `(model, config,
//!   lake, task)`, so runs can execute on any thread in any order and still
//!   produce bit-identical answers and per-run usage
//!   ([`BatchRunner`]).
//! * **Redundancy** — tasks on the same table issue near-identical
//!   retrieval (`p_rm`, `p_ri`) and parsing (`p_dp`) prompts; a
//!   prompt-level memo turns that redundancy into saved tokens and
//!   throughput ([`PromptCache`]).
//!
//! The cache composes three mechanisms, each independently tunable:
//!
//! * **Canonical keys** ([`crate::canon`]) — prompts are keyed by their
//!   [`PromptKey`], so whitespace variants and (at
//!   [`CanonLevel::TableStem`]) per-row retrieval preambles share entries.
//! * **Sharding** — the memo is split across N independently locked maps
//!   selected by key hash, so concurrent [`BatchRunner`] workers contend on
//!   1/N of the lock traffic.
//! * **Persistence** — [`PromptCache::save_to`] / [`PromptCache::load_from`]
//!   snapshot the memo in a versioned text format, so a second eval run
//!   starts warm and answers its first prompts without any model call.
//!
//! ```
//! use unidm::{BatchRunner, PipelineConfig, PromptCache, Task};
//! use unidm_llm::{LanguageModel, LlmProfile, MockLlm};
//! use unidm_tablestore::{DataLake, Table, Value};
//! use unidm_world::World;
//!
//! let world = World::generate(42);
//! let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), 1);
//! let cache = PromptCache::unbounded(&llm);
//!
//! let mut cities = Table::builder("cities").columns(["city", "country", "timezone"]).build();
//! cities.push_row(vec![
//!     Value::text("Florence"), Value::text("Italy"), Value::text("Central European Time"),
//! ]).unwrap();
//! cities.push_row(vec![Value::text("Copenhagen"), Value::text("Denmark"), Value::Null]).unwrap();
//! let lake: DataLake = [cities].into_iter().collect();
//!
//! let tasks = vec![Task::imputation("cities", 1, "timezone", "city")];
//! let runner = BatchRunner::new(&cache, PipelineConfig::paper_default());
//! let outputs = runner.run(&lake, &tasks);
//! assert_eq!(outputs[0].as_ref().unwrap().answer, "Central European Time");
//! ```

use std::collections::{BTreeMap, HashMap};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

use unidm_llm::{Completion, LanguageModel, LlmError, Usage};
use unidm_tablestore::DataLake;

use crate::canon::{CanonLevel, PromptKey};
use crate::pipeline::{RunOutput, UniDm};
use crate::task::Task;
use crate::{PipelineConfig, UniDmError};

/// Hit/miss/saving statistics of a [`PromptCache`] (or of one shard).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Completions served from the cache.
    pub hits: usize,
    /// Completions that had to go to the model.
    pub misses: usize,
    /// Entries evicted to stay within capacity.
    pub evictions: usize,
    /// Tokens (prompt + completion) the model did not have to process
    /// because a hit short-circuited the call.
    pub tokens_saved: usize,
}

impl CacheStats {
    /// Hit rate in `[0, 1]` (zero when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Adds another stats snapshot into this one (used to aggregate
    /// per-shard statistics).
    pub fn merge(&mut self, other: CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.tokens_saved += other.tokens_saved;
    }
}

#[derive(Debug, Default)]
struct CacheInner {
    /// canonical prompt → (completion, last-use stamp).
    entries: HashMap<String, (Completion, u64)>,
    /// last-use stamp → prompt: the recency index that makes LRU eviction
    /// O(log n) instead of a full scan of `entries`.
    recency: BTreeMap<u64, String>,
    stats: CacheStats,
}

impl CacheInner {
    /// Returns the memoized completion for `prompt`, refreshing its
    /// recency to `stamp`, or `None` on a miss.
    ///
    /// Stamps come from the cache-wide clock (not a per-shard counter), so
    /// recency is comparable across shards — which is what lets snapshot
    /// compaction keep the globally most-recent entries.
    fn touch(&mut self, prompt: &str, stamp: u64) -> Option<Completion> {
        let (completion, last_used) = self.entries.get_mut(prompt)?;
        self.recency.remove(last_used);
        self.recency.insert(stamp, prompt.to_string());
        *last_used = stamp;
        Some(completion.clone())
    }

    /// Inserts (or refreshes) `prompt` at `stamp`, evicting the
    /// least-recently-used entry when over `capacity`.
    fn insert(&mut self, prompt: &str, completion: Completion, capacity: usize, stamp: u64) {
        if let Some((_, old_stamp)) = self.entries.insert(prompt.to_string(), (completion, stamp)) {
            // A racing miss on the same prompt already inserted it; drop
            // the stale recency slot.
            self.recency.remove(&old_stamp);
        }
        self.recency.insert(stamp, prompt.to_string());
        if self.entries.len() > capacity {
            if let Some((_, victim)) = self.recency.pop_first() {
                self.entries.remove(&victim);
                self.stats.evictions += 1;
            }
        }
    }
}

/// First line of every [`PromptCache`] snapshot; bumped whenever the format
/// changes incompatibly.
pub const SNAPSHOT_HEADER: &str = "unidm-prompt-cache v1";

/// Why a snapshot could not be saved or restored.
#[derive(Debug)]
pub enum SnapshotError {
    /// Reading or writing the snapshot file failed.
    Io(std::io::Error),
    /// The snapshot text is not a well-formed `unidm-prompt-cache`
    /// document (wrong header, truncated entry, unparseable counts).
    Parse {
        /// 1-based line number the parser gave up on.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// The snapshot was taken over a different model, so its memoized
    /// completions would be wrong for this cache's inner model.
    ModelMismatch {
        /// The inner model of the cache being restored.
        expected: String,
        /// The model recorded in the snapshot.
        found: String,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::Parse { line, message } => {
                write!(f, "snapshot parse error at line {line}: {message}")
            }
            SnapshotError::ModelMismatch { expected, found } => write!(
                f,
                "snapshot model mismatch: cache wraps {expected:?} but snapshot was taken over \
                 {found:?}"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// A concurrent prompt → completion memo layered over any
/// [`LanguageModel`].
///
/// The cache is itself a `LanguageModel`, so it slots transparently under
/// [`UniDm`] or [`BatchRunner`]: repeated prompts — retrieval and parsing
/// calls shared by tasks on the same table, duplicate final claims —
/// are answered from memory without consuming model tokens.
///
/// # Keying and canonicalization
///
/// Lookups go through [`PromptKey::canonicalize`] at the cache's
/// [`CanonLevel`] (default [`CanonLevel::Verbatim`], i.e. exact
/// memoization). At higher levels a miss completes the *canonical* prompt
/// text rather than the raw variant, which makes the memo a pure function
/// of the canonical key: whichever worker populates an entry, the stored
/// completion is identical, so serial and parallel batches stay
/// bit-for-bit equal even when many raw prompts fold into one entry.
///
/// # Sharding
///
/// Entries are distributed over [`PromptCache::shards`] independently
/// locked maps by key hash, cutting lock contention under
/// [`BatchRunner`] parallelism. Statistics are counted per shard (exactly
/// — every counter update happens under its shard's lock) and aggregated
/// by [`PromptCache::stats`]; [`PromptCache::shard_stats`] exposes the
/// per-shard breakdown. Lookups never block on the underlying model: the
/// shard lock is released while a miss is being completed.
///
/// # Persistence
///
/// [`PromptCache::snapshot`] serializes the memo to a deterministic,
/// versioned text document (header [`SNAPSHOT_HEADER`], the inner model's
/// name, then one escaped prompt/completion/usage triplet per entry);
/// [`PromptCache::restore`] loads one back, re-canonicalizing and
/// re-sharding every entry under the receiving cache's configuration.
/// [`PromptCache::save_to`] / [`PromptCache::load_from`] do the same
/// through a file, which is how repeated eval runs start warm.
///
/// # Determinism and accounting
///
/// The deterministic substrate returns the same completion for the same
/// prompt, so serving a memoized completion changes nothing about answers
/// or per-run usage — only about what the *inner* model actually
/// processed. Cached completions report the usage of the original call,
/// which keeps per-run accounting via [`unidm_llm::UsageMeter`] identical
/// with and without the cache; the inner model's own counter only grows on
/// misses, and the difference is tracked as [`CacheStats::tokens_saved`].
///
/// # Examples
///
/// ```
/// use unidm::{CanonLevel, PromptCache};
/// use unidm_llm::{LanguageModel, LlmProfile, MockLlm};
/// use unidm_world::World;
///
/// let world = World::generate(42);
/// let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), 1);
/// let cache = PromptCache::unbounded(&llm)
///     .with_shards(4)
///     .with_canonicalization(CanonLevel::Whitespace);
///
/// let a = cache.complete("The quick  brown fox").unwrap();
/// let b = cache.complete("The quick brown fox").unwrap(); // whitespace variant: hit
/// assert_eq!(a, b);
/// assert_eq!(cache.stats().hits, 1);
/// assert_eq!(cache.stats().tokens_saved, a.usage.total());
/// ```
pub struct PromptCache<'a> {
    inner: &'a dyn LanguageModel,
    capacity: usize,
    shard_capacity: usize,
    level: CanonLevel,
    shards: Box<[Mutex<CacheInner>]>,
    /// Cache-wide monotonic use counter: stamps are comparable across
    /// shards, so LRU order is global (snapshot compaction relies on it).
    clock: AtomicU64,
}

impl std::fmt::Debug for PromptCache<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PromptCache")
            .field("inner", &self.inner.name())
            .field("capacity", &self.capacity)
            .field("shards", &self.shards.len())
            .field("level", &self.level)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Default shard count: enough to keep eight batch workers off each
/// other's locks without fragmenting small caches.
const DEFAULT_SHARDS: usize = 8;

/// The shard count new caches start with: the `UNIDM_SHARDS` environment
/// variable when set to a positive integer (rounded up to a power of two —
/// this is how CI exercises shard-count sensitivity across the whole
/// suite), [`DEFAULT_SHARDS`] otherwise.
fn default_shards() -> usize {
    std::env::var("UNIDM_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|n| *n > 0)
        .map(usize::next_power_of_two)
        .unwrap_or(DEFAULT_SHARDS)
}

fn build_shards(n: usize) -> Box<[Mutex<CacheInner>]> {
    (0..n).map(|_| Mutex::new(CacheInner::default())).collect()
}

impl<'a> PromptCache<'a> {
    /// Creates a cache holding at most `capacity` completions (LRU
    /// eviction), split across the default shard count (the
    /// `UNIDM_SHARDS` environment variable when set, 8 otherwise).
    ///
    /// The capacity budget is divided evenly across shards (each shard
    /// gets at least one slot), so with very small capacities the
    /// effective bound is `shards × 1`; use [`PromptCache::with_shards`]
    /// to control the split. [`PromptCache::snapshot`] re-applies the
    /// *total* capacity, so persisted state never exceeds it even when
    /// per-shard rounding lets the in-memory maps run slightly over.
    pub fn new(inner: &'a dyn LanguageModel, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let mut cache = PromptCache {
            inner,
            capacity,
            shard_capacity: 0,
            level: CanonLevel::Verbatim,
            shards: build_shards(default_shards()),
            clock: AtomicU64::new(0),
        };
        cache.shard_capacity = cache.capacity_per_shard();
        cache
    }

    /// Creates a cache that never evicts.
    pub fn unbounded(inner: &'a dyn LanguageModel) -> Self {
        Self::new(inner, usize::MAX)
    }

    /// Sets the shard count (rounded up to a power of two, minimum 1) and
    /// redistributes any existing entries. Builder-style; intended at
    /// construction time.
    pub fn with_shards(mut self, shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        let entries = self.drain_entries();
        // Statistics survive the rebuild: fold the old shard counters into
        // the first new shard (aggregate stats stay exact; the per-shard
        // attribution of pre-rebuild traffic is no longer meaningful).
        let stats = self.stats();
        self.shards = build_shards(n);
        self.shard_capacity = self.capacity_per_shard();
        self.lock_shard(&self.shards[0]).stats = stats;
        self.readmit(entries);
        self
    }

    /// Sets the canonicalization level and re-keys any existing entries.
    /// Builder-style; intended at construction time.
    pub fn with_canonicalization(mut self, level: CanonLevel) -> Self {
        let entries = self.drain_entries();
        self.level = level;
        self.readmit(entries);
        self
    }

    /// The canonicalization level lookups run at.
    pub fn level(&self) -> CanonLevel {
        self.level
    }

    /// The number of independently locked shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The total completion capacity across all shards.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn capacity_per_shard(&self) -> usize {
        if self.capacity == usize::MAX {
            usize::MAX
        } else {
            self.capacity.div_ceil(self.shards.len()).max(1)
        }
    }

    fn shard_for(&self, key: &PromptKey) -> &Mutex<CacheInner> {
        // Shard count is a power of two, so masking the stable FNV hash
        // picks a shard uniformly.
        let index = (key.hash64() as usize) & (self.shards.len() - 1);
        &self.shards[index]
    }

    fn lock_shard<'s>(&self, shard: &'s Mutex<CacheInner>) -> MutexGuard<'s, CacheInner> {
        shard.lock().expect("cache shard lock poisoned")
    }

    /// The next globally ordered recency stamp.
    fn next_stamp(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Removes every entry, returning them sorted by canonical prompt (so
    /// rebuilds are deterministic). Statistics are kept.
    fn drain_entries(&mut self) -> Vec<(String, Completion)> {
        let mut entries = Vec::new();
        for shard in self.shards.iter() {
            let mut state = self.lock_shard(shard);
            entries.extend(
                state
                    .entries
                    .drain()
                    .map(|(prompt, (completion, _))| (prompt, completion)),
            );
            state.recency.clear();
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries
    }

    /// Re-inserts drained entries under the current level/shard layout.
    fn readmit(&self, entries: Vec<(String, Completion)>) {
        for (prompt, completion) in entries {
            self.admit(&prompt, completion);
        }
    }

    /// Inserts a known-good completion under the canonical key of
    /// `prompt` without touching hit/miss counters.
    fn admit(&self, prompt: &str, completion: Completion) {
        let key = PromptKey::canonicalize(prompt, self.level);
        let text = key.text();
        let shard = self.shard_for(&key);
        let stamp = self.next_stamp();
        self.lock_shard(shard)
            .insert(&text, completion, self.shard_capacity, stamp);
    }

    /// A snapshot of the aggregated hit/miss/eviction statistics.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in self.shards.iter() {
            total.merge(self.lock_shard(shard).stats);
        }
        total
    }

    /// Per-shard statistics, in shard order.
    pub fn shard_stats(&self) -> Vec<CacheStats> {
        self.shards
            .iter()
            .map(|shard| self.lock_shard(shard).stats)
            .collect()
    }

    /// Number of completions currently held across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| self.lock_shard(shard).entries.len())
            .sum()
    }

    /// Whether the cache holds no completions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries (statistics are kept).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            let mut state = self.lock_shard(shard);
            state.entries.clear();
            state.recency.clear();
        }
    }

    /// Serializes the memo to the versioned snapshot text format,
    /// compacted to the cache's configured capacity.
    ///
    /// The output is deterministic (entries sorted by canonical prompt)
    /// and records the inner model's name, so [`PromptCache::restore`]
    /// can refuse snapshots taken over a different model. Statistics are
    /// not persisted — a restored cache starts with fresh counters.
    ///
    /// Compaction keeps the most-recently-used `capacity` entries: recency
    /// stamps come from one cache-wide clock, so LRU order is global even
    /// across shards. This is what bounds snapshot files across repeated
    /// scenario runs — per-shard capacity rounding can let the in-memory
    /// maps briefly exceed the total budget, but persisted state never
    /// does. (An unbounded cache persists everything.)
    pub fn snapshot(&self) -> String {
        let mut entries: Vec<(String, Completion, u64)> = Vec::new();
        for shard in self.shards.iter() {
            let state = self.lock_shard(shard);
            entries.extend(
                state.entries.iter().map(|(prompt, (completion, stamp))| {
                    (prompt.clone(), completion.clone(), *stamp)
                }),
            );
        }
        if self.capacity != usize::MAX && entries.len() > self.capacity {
            entries.sort_by_key(|entry| std::cmp::Reverse(entry.2));
            entries.truncate(self.capacity);
        }
        let mut entries: Vec<(String, Completion)> = entries
            .into_iter()
            .map(|(prompt, completion, _)| (prompt, completion))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = format!(
            "{SNAPSHOT_HEADER}\nmodel {}\nentries {}\n",
            self.inner.name(),
            entries.len()
        );
        for (prompt, completion) in &entries {
            out.push_str("p ");
            out.push_str(&escape(prompt));
            out.push_str("\nc ");
            out.push_str(&escape(&completion.text));
            out.push('\n');
            out.push_str(&format!(
                "u {} {}\n",
                completion.usage.prompt_tokens, completion.usage.completion_tokens
            ));
        }
        out
    }

    /// Restores entries from snapshot text produced by
    /// [`PromptCache::snapshot`], returning how many were admitted.
    ///
    /// Entries are re-canonicalized and re-sharded under this cache's
    /// configuration, so a snapshot can be loaded into a cache with a
    /// different shard count or canonicalization level. Restoring does not
    /// count as hits or misses; subsequent lookups of restored prompts are
    /// hits served before any model call.
    ///
    /// Restoration is atomic with respect to errors: the document is
    /// parsed in full before anything is admitted, so a truncated,
    /// garbled, wrong-version or wrong-model snapshot leaves the cache
    /// exactly as it was.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Parse`] for malformed documents and
    /// [`SnapshotError::ModelMismatch`] when the snapshot was taken over a
    /// model with a different name.
    pub fn restore(&self, snapshot: &str) -> Result<usize, SnapshotError> {
        let parse_err = |line: usize, message: &str| SnapshotError::Parse {
            line,
            message: message.to_string(),
        };
        let mut lines = snapshot.lines();
        let header = lines.next().ok_or_else(|| parse_err(1, "empty snapshot"))?;
        if header != SNAPSHOT_HEADER {
            return Err(parse_err(
                1,
                &format!("expected header {SNAPSHOT_HEADER:?}"),
            ));
        }
        let model_line = lines
            .next()
            .ok_or_else(|| parse_err(2, "missing model line"))?;
        let found = model_line
            .strip_prefix("model ")
            .ok_or_else(|| parse_err(2, "expected `model <name>`"))?;
        if found != self.inner.name() {
            return Err(SnapshotError::ModelMismatch {
                expected: self.inner.name().to_string(),
                found: found.to_string(),
            });
        }
        let count_line = lines
            .next()
            .ok_or_else(|| parse_err(3, "missing entries line"))?;
        let declared: usize = count_line
            .strip_prefix("entries ")
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| parse_err(3, "expected `entries <count>`"))?;
        // Parse every declared entry before admitting anything, so a
        // malformed tail cannot leave the cache half-restored.
        let mut parsed: Vec<(String, Completion)> = Vec::new();
        for index in 0..declared {
            let entry_line = 4 + index * 3;
            let p_line = lines
                .next()
                .ok_or_else(|| parse_err(entry_line, "truncated entry"))?;
            let prompt = p_line
                .strip_prefix("p ")
                .ok_or_else(|| parse_err(entry_line, "expected `p <prompt>`"))?;
            let c_line = lines
                .next()
                .ok_or_else(|| parse_err(entry_line + 1, "truncated entry (missing completion)"))?;
            let text = c_line
                .strip_prefix("c ")
                .ok_or_else(|| parse_err(entry_line + 1, "expected `c <completion>`"))?;
            let u_line = lines
                .next()
                .ok_or_else(|| parse_err(entry_line + 2, "truncated entry (missing usage)"))?;
            let usage = u_line
                .strip_prefix("u ")
                .and_then(|u| u.split_once(' '))
                .and_then(|(p, c)| Some((p.parse().ok()?, c.parse().ok()?)))
                .map(|(prompt_tokens, completion_tokens)| Usage {
                    prompt_tokens,
                    completion_tokens,
                })
                .ok_or_else(|| {
                    parse_err(
                        entry_line + 2,
                        "expected `u <prompt-tokens> <completion-tokens>`",
                    )
                })?;
            parsed.push((
                unescape(prompt),
                Completion {
                    text: unescape(text),
                    usage,
                },
            ));
        }
        if lines.next().is_some() {
            return Err(parse_err(
                4 + declared * 3,
                "trailing data after the declared entries",
            ));
        }
        let admitted = parsed.len();
        for (prompt, completion) in parsed {
            self.admit(&prompt, completion);
        }
        Ok(admitted)
    }

    /// Writes [`PromptCache::snapshot`] to `path`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] when the file cannot be written.
    pub fn save_to(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        std::fs::write(path, self.snapshot())?;
        Ok(())
    }

    /// Restores a snapshot file written by [`PromptCache::save_to`],
    /// returning how many entries were admitted.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] when the file cannot be read, plus every
    /// error [`PromptCache::restore`] can produce.
    pub fn load_from(&self, path: impl AsRef<Path>) -> Result<usize, SnapshotError> {
        let text = std::fs::read_to_string(path)?;
        self.restore(&text)
    }
}

/// Escapes a prompt or completion for the line-oriented snapshot format.
fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            _ => out.push(ch),
        }
    }
    out
}

/// Inverse of [`escape`]. Unknown escapes pass through verbatim.
fn unescape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars();
    while let Some(ch) = chars.next() {
        if ch != '\\' {
            out.push(ch);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('\\') => out.push('\\'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

impl LanguageModel for PromptCache<'_> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn complete(&self, prompt: &str) -> Result<Completion, LlmError> {
        let key = PromptKey::canonicalize(prompt, self.level);
        let text = key.text();
        let shard = self.shard_for(&key);
        {
            let stamp = self.next_stamp();
            let mut state = self.lock_shard(shard);
            if let Some(completion) = state.touch(&text, stamp) {
                state.stats.hits += 1;
                state.stats.tokens_saved += completion.usage.total();
                return Ok(completion);
            }
            state.stats.misses += 1;
        }
        // Complete the miss without holding the lock: concurrent workers
        // must not serialize on the model. Two threads racing on the same
        // key both pay for it — the insert below is idempotent because the
        // canonical text is completed by a deterministic substrate.
        let completion = self.inner.complete(&text)?;
        let stamp = self.next_stamp();
        self.lock_shard(shard)
            .insert(&text, completion.clone(), self.shard_capacity, stamp);
        Ok(completion)
    }

    fn usage(&self) -> Usage {
        // Tokens the inner model actually processed; cache hits do not
        // appear here. Per-run attribution happens in `UniDm::run`.
        self.inner.usage()
    }

    fn reset_usage(&self) {
        self.inner.reset_usage();
    }

    fn context_window(&self) -> usize {
        self.inner.context_window()
    }
}

/// A parallel batch executor for [`UniDm`] runs.
///
/// Fans the tasks of a batch out across a pool of scoped worker threads
/// that share one model reference. Results come back in task order, each
/// carrying its own [`RunOutput::usage`] metered per run — never diffed
/// from the model's global counter — so the output is bit-for-bit
/// identical to running the same tasks serially.
///
/// # Examples
///
/// ```
/// use unidm::{BatchRunner, PipelineConfig, Task};
/// use unidm_llm::{LlmProfile, MockLlm};
/// use unidm_tablestore::{DataLake, Table, Value};
/// use unidm_world::World;
///
/// let world = World::generate(42);
/// let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), 1);
/// let mut cities = Table::builder("cities").columns(["city", "country", "timezone"]).build();
/// cities.push_row(vec![
///     Value::text("Florence"), Value::text("Italy"), Value::text("Central European Time"),
/// ]).unwrap();
/// cities.push_row(vec![Value::text("Copenhagen"), Value::text("Denmark"), Value::Null]).unwrap();
/// let lake: DataLake = [cities].into_iter().collect();
///
/// let tasks = vec![Task::imputation("cities", 1, "timezone", "city")];
/// let serial = BatchRunner::new(&llm, PipelineConfig::paper_default()).with_workers(1);
/// let parallel = serial.with_workers(4);
/// assert_eq!(
///     serial.answers(&lake, &tasks),
///     parallel.answers(&lake, &tasks),
///     "scheduling must not change answers",
/// );
/// ```
#[derive(Clone, Copy)]
pub struct BatchRunner<'a> {
    llm: &'a dyn LanguageModel,
    config: PipelineConfig,
    workers: usize,
}

impl std::fmt::Debug for BatchRunner<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchRunner")
            .field("llm", &self.llm.name())
            .field("config", &self.config)
            .field("workers", &self.workers)
            .finish()
    }
}

impl<'a> BatchRunner<'a> {
    /// Creates a runner with one worker per available CPU (capped at 8 —
    /// the pipeline is compute-light, so more threads only add contention
    /// on the shared model).
    pub fn new(llm: &'a dyn LanguageModel, config: PipelineConfig) -> Self {
        let parallelism = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8);
        BatchRunner {
            llm,
            config,
            workers: parallelism,
        }
    }

    /// Overrides the worker count (`1` executes serially on the calling
    /// thread).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The pipeline configuration the workers run with.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Runs every task over `lake`, returning one result per task in task
    /// order.
    ///
    /// Individual task failures do not abort the batch: each slot carries
    /// its own `Result`, mirroring what a serial loop over
    /// [`UniDm::run`] would collect.
    pub fn run(&self, lake: &DataLake, tasks: &[Task]) -> Vec<Result<RunOutput, UniDmError>> {
        let workers = self.workers.min(tasks.len());
        if workers <= 1 {
            let unidm = UniDm::new(self.llm, self.config);
            return tasks.iter().map(|task| unidm.run(lake, task)).collect();
        }
        let slots: Vec<OnceLock<Result<RunOutput, UniDmError>>> =
            tasks.iter().map(|_| OnceLock::new()).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let unidm = UniDm::new(self.llm, self.config);
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(task) = tasks.get(i) else { break };
                        let result = unidm.run(lake, task);
                        slots[i].set(result).expect("slot claimed exactly once");
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every slot filled"))
            .collect()
    }

    /// Like [`BatchRunner::run`], but flattens each result to its answer
    /// text (empty string on error) — the shape the accuracy harnesses
    /// consume.
    pub fn answers(&self, lake: &DataLake, tasks: &[Task]) -> Vec<String> {
        self.run(lake, tasks)
            .into_iter()
            .map(|r| r.map(|o| o.answer).unwrap_or_default())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unidm_llm::protocol::SerializedRecord;
    use unidm_llm::{LlmProfile, MockLlm};
    use unidm_synthdata::{imputation, tableqa};
    use unidm_world::World;

    fn setup() -> (World, MockLlm) {
        let world = World::generate(7);
        let llm = MockLlm::new(&world, LlmProfile::gpt4_turbo(), 1);
        (world, llm)
    }

    fn imputation_tasks(ds: &unidm_synthdata::ImputationDataset, n: usize) -> Vec<Task> {
        ds.targets
            .iter()
            .take(n)
            .map(|t| Task::imputation(ds.table.name(), t.row, "city", "name"))
            .collect()
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let (world, llm) = setup();
        let ds = imputation::restaurant(&world, 3, 30);
        let lake: DataLake = [ds.table.clone()].into_iter().collect();
        let tasks = imputation_tasks(&ds, 30);
        let config = PipelineConfig::paper_default();

        let serial = BatchRunner::new(&llm, config)
            .with_workers(1)
            .run(&lake, &tasks);
        let parallel = BatchRunner::new(&llm, config)
            .with_workers(6)
            .run(&lake, &tasks);

        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            let s = s.as_ref().expect("serial run ok");
            let p = p.as_ref().expect("parallel run ok");
            assert_eq!(s.answer, p.answer);
            assert_eq!(
                s.usage, p.usage,
                "per-run usage must not depend on scheduling"
            );
        }
    }

    #[test]
    fn per_run_usage_ignores_other_runs_on_shared_model() {
        // Run the same task twice against a model whose global counter
        // already moved: metered per-run usage must be identical, proving
        // it is not derived from the global counter.
        let (world, llm) = setup();
        let ds = imputation::restaurant(&world, 3, 5);
        let lake: DataLake = [ds.table.clone()].into_iter().collect();
        let unidm = UniDm::new(&llm, PipelineConfig::paper_default());
        let task = Task::imputation("restaurants", ds.targets[0].row, "city", "name");
        let first = unidm.run(&lake, &task).unwrap();
        llm.complete("unrelated traffic from another tenant")
            .unwrap();
        let second = unidm.run(&lake, &task).unwrap();
        assert_eq!(first.usage, second.usage);
        assert!(first.usage.total() > 0);
    }

    #[test]
    fn batch_preserves_order_and_isolates_failures() {
        let (world, llm) = setup();
        let ds = imputation::restaurant(&world, 3, 6);
        let lake: DataLake = [ds.table.clone()].into_iter().collect();
        let mut tasks = imputation_tasks(&ds, 6);
        // Poison the middle of the batch with a reference to a missing
        // table; its neighbours must still succeed.
        tasks.insert(3, Task::imputation("no_such_table", 0, "a", "b"));
        let results = BatchRunner::new(&llm, PipelineConfig::paper_default())
            .with_workers(4)
            .run(&lake, &tasks);
        assert_eq!(results.len(), 7);
        assert!(matches!(results[3], Err(UniDmError::Table(_))));
        for (i, r) in results.iter().enumerate() {
            if i != 3 {
                assert!(r.is_ok(), "slot {i} should have survived the poisoned slot");
            }
        }
    }

    #[test]
    fn cache_hits_repeated_prompts_and_saves_tokens() {
        let (_, llm) = setup();
        let cache = PromptCache::unbounded(&llm);
        let a = cache.complete("The quick brown fox").unwrap();
        assert_eq!(
            cache.stats(),
            CacheStats {
                misses: 1,
                ..CacheStats::default()
            }
        );
        let b = cache.complete("The quick brown fox").unwrap();
        assert_eq!(a, b, "hit must return the memoized completion verbatim");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.tokens_saved, a.usage.total());
        // The inner model processed the prompt exactly once.
        assert_eq!(llm.usage(), a.usage);
    }

    #[test]
    fn cache_evicts_least_recently_used() {
        let (_, llm) = setup();
        // One shard so the LRU policy is global and observable.
        let cache = PromptCache::new(&llm, 2).with_shards(1);
        cache.complete("prompt one").unwrap();
        cache.complete("prompt two").unwrap();
        // Touch "prompt one" so "prompt two" becomes the LRU victim.
        cache.complete("prompt one").unwrap();
        cache.complete("prompt three").unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // "one" and "three" hit; "two" was evicted and misses again.
        let before = cache.stats();
        cache.complete("prompt one").unwrap();
        cache.complete("prompt three").unwrap();
        cache.complete("prompt two").unwrap();
        let after = cache.stats();
        assert_eq!(after.hits - before.hits, 2);
        assert_eq!(after.misses - before.misses, 1);
    }

    #[test]
    fn cache_propagates_model_errors() {
        let (_, llm) = setup();
        let cache = PromptCache::unbounded(&llm);
        assert!(cache.complete("  ").is_err());
        assert_eq!(cache.len(), 0, "errors must not be memoized");
    }

    #[test]
    fn sharded_cache_distributes_entries_and_aggregates_stats() {
        let (_, llm) = setup();
        let cache = PromptCache::unbounded(&llm).with_shards(4);
        assert_eq!(cache.shards(), 4);
        for i in 0..32 {
            cache
                .complete(&format!("distinct prompt number {i}"))
                .unwrap();
        }
        for i in 0..32 {
            cache
                .complete(&format!("distinct prompt number {i}"))
                .unwrap();
        }
        let per_shard = cache.shard_stats();
        assert_eq!(per_shard.len(), 4);
        assert!(
            per_shard.iter().filter(|s| s.misses > 0).count() >= 2,
            "32 distinct prompts should spread over several shards: {per_shard:?}"
        );
        let mut folded = CacheStats::default();
        for s in &per_shard {
            folded.merge(*s);
        }
        assert_eq!(folded, cache.stats(), "aggregate must equal shard sum");
        assert_eq!((folded.hits, folded.misses), (32, 32));
        assert_eq!(cache.len(), 32);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let (_, llm) = setup();
        assert_eq!(PromptCache::unbounded(&llm).with_shards(3).shards(), 4);
        assert_eq!(PromptCache::unbounded(&llm).with_shards(1).shards(), 1);
        assert_eq!(PromptCache::unbounded(&llm).with_shards(0).shards(), 1);
        // The startup default honors UNIDM_SHARDS (the CI matrix sets it).
        assert_eq!(PromptCache::unbounded(&llm).shards(), default_shards());
        assert!(default_shards().is_power_of_two());
    }

    #[test]
    fn snapshot_compacts_to_capacity_in_global_lru_order() {
        let (_, llm) = setup();
        // Capacity 4 over 4 shards: per-shard rounding gives each shard a
        // slot, so the in-memory map can briefly hold more than 4 entries,
        // but the snapshot must compact to the 4 most recently used.
        let cache = PromptCache::new(&llm, 4).with_shards(4);
        for i in 0..8 {
            cache.complete(&format!("compaction prompt {i}")).unwrap();
        }
        // Refresh two early prompts so recency, not insertion order,
        // decides survival.
        cache.complete("compaction prompt 0").unwrap();
        cache.complete("compaction prompt 1").unwrap();
        let snapshot = cache.snapshot();
        let kept: Vec<&str> = snapshot
            .lines()
            .filter_map(|l| l.strip_prefix("p "))
            .collect();
        assert_eq!(kept.len(), 4, "snapshot bounded by total capacity");
        for p in ["compaction prompt 0", "compaction prompt 1"] {
            assert!(
                kept.contains(&p),
                "recently touched {p:?} must survive compaction: {kept:?}"
            );
        }
        // The compacted snapshot round-trips.
        let restored = PromptCache::new(&llm, 4).with_shards(1);
        assert_eq!(restored.restore(&snapshot).unwrap(), 4);
    }

    #[test]
    fn restore_is_atomic_on_malformed_input() {
        let (_, llm) = setup();
        let source = PromptCache::unbounded(&llm);
        source.complete("alpha").unwrap();
        source.complete("beta").unwrap();
        let snapshot = source.snapshot();

        // Truncate inside the second entry: nothing may be admitted.
        let truncated = snapshot.lines().take(6).collect::<Vec<_>>().join("\n");
        let target = PromptCache::unbounded(&llm);
        target.complete("pre-existing entry").unwrap();
        assert!(matches!(
            target.restore(&truncated),
            Err(SnapshotError::Parse { .. })
        ));
        assert_eq!(
            target.len(),
            1,
            "failed restore must not admit a partial prefix"
        );

        // Trailing garbage after the declared entries is rejected whole.
        let trailing = format!("{snapshot}unexpected trailing line\n");
        assert!(matches!(
            target.restore(&trailing),
            Err(SnapshotError::Parse { .. })
        ));
        assert_eq!(target.len(), 1);
    }

    #[test]
    fn rebuilding_shards_keeps_entries() {
        let (_, llm) = setup();
        let cache = PromptCache::unbounded(&llm);
        cache.complete("alpha").unwrap();
        cache.complete("beta").unwrap();
        cache.complete("alpha").unwrap();
        let stats_before = cache.stats();
        let cache = cache
            .with_shards(2)
            .with_canonicalization(CanonLevel::Whitespace);
        assert_eq!(cache.len(), 2, "entries survive reconfiguration");
        assert_eq!(
            cache.stats(),
            stats_before,
            "statistics survive reconfiguration"
        );
        let before = llm.usage();
        cache.complete("alpha").unwrap();
        assert_eq!(llm.usage(), before, "re-keyed entry still hits");
    }

    #[test]
    fn canonicalized_cache_folds_whitespace_variants() {
        let (_, llm) = setup();
        let cache = PromptCache::unbounded(&llm).with_canonicalization(CanonLevel::Whitespace);
        let a = cache.complete("The quick  brown fox").unwrap();
        let b = cache.complete(" The quick brown fox ").unwrap();
        assert_eq!(a, b);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn snapshot_restore_roundtrip_serves_hits_without_model_calls() {
        let (world, llm) = setup();
        let cache = PromptCache::unbounded(&llm);
        cache.complete("alpha prompt").unwrap();
        cache.complete("beta prompt\nwith a second line").unwrap();
        let snapshot = cache.snapshot();
        assert!(snapshot.starts_with(SNAPSHOT_HEADER));

        let fresh_llm = MockLlm::new(&world, LlmProfile::gpt4_turbo(), 1);
        let restored = PromptCache::unbounded(&fresh_llm).with_shards(2);
        assert_eq!(restored.restore(&snapshot).unwrap(), 2);
        assert_eq!(restored.len(), 2);
        let reply = restored
            .complete("beta prompt\nwith a second line")
            .unwrap();
        assert_eq!(
            fresh_llm.usage(),
            Usage::default(),
            "restored entry must answer before any model call"
        );
        assert_eq!(
            reply.text,
            cache
                .complete("beta prompt\nwith a second line")
                .unwrap()
                .text
        );
        assert_eq!(restored.stats().hits, 1);
    }

    #[test]
    fn snapshot_is_deterministic() {
        let (_, llm) = setup();
        let a = PromptCache::unbounded(&llm).with_shards(1);
        let b = PromptCache::unbounded(&llm).with_shards(8);
        for prompt in ["one", "two", "three"] {
            a.complete(prompt).unwrap();
            b.complete(prompt).unwrap();
        }
        assert_eq!(
            a.snapshot(),
            b.snapshot(),
            "snapshot must not depend on shard layout"
        );
    }

    #[test]
    fn restore_rejects_other_models_and_garbage() {
        let (world, llm) = setup();
        let cache = PromptCache::unbounded(&llm);
        cache.complete("alpha").unwrap();
        let snapshot = cache.snapshot();

        let other = MockLlm::new(&world, LlmProfile::gpt3_175b(), 1);
        let mismatched = PromptCache::unbounded(&other);
        assert!(matches!(
            mismatched.restore(&snapshot),
            Err(SnapshotError::ModelMismatch { .. })
        ));
        assert!(mismatched.is_empty());

        assert!(matches!(
            cache.restore("not a snapshot"),
            Err(SnapshotError::Parse { line: 1, .. })
        ));
        let truncated = snapshot.lines().take(4).collect::<Vec<_>>().join("\n");
        assert!(matches!(
            cache.restore(&truncated),
            Err(SnapshotError::Parse { .. })
        ));
    }

    #[test]
    fn escape_roundtrips_control_characters() {
        for text in [
            "plain",
            "two\nlines",
            "back\\slash",
            "\r\n mixed \\n literal",
        ] {
            assert_eq!(unescape(&escape(text)), text);
        }
    }

    #[test]
    fn cached_batch_same_answers_fewer_model_tokens() {
        let (world, llm) = setup();
        let ds = imputation::restaurant(&world, 3, 25);
        let lake: DataLake = [ds.table.clone()].into_iter().collect();
        let tasks = imputation_tasks(&ds, 25);
        let config = PipelineConfig::paper_default();

        llm.reset_usage();
        let plain = BatchRunner::new(&llm, config)
            .with_workers(4)
            .run(&lake, &tasks);
        let plain_tokens = llm.usage().total();

        llm.reset_usage();
        let cache = PromptCache::unbounded(&llm);
        let cached = BatchRunner::new(&cache, config)
            .with_workers(4)
            .run(&lake, &tasks);
        let cached_tokens = llm.usage().total();

        for (a, b) in plain.iter().zip(&cached) {
            assert_eq!(a.as_ref().unwrap().answer, b.as_ref().unwrap().answer);
        }
        assert!(
            cache.stats().hits > 0,
            "tasks on one table must share prompts"
        );
        assert!(
            cached_tokens < plain_tokens,
            "cache should save model tokens: {cached_tokens} vs {plain_tokens}"
        );
    }

    #[test]
    fn concurrency_smoke_all_task_kinds_share_one_model() {
        let (world, llm) = setup();
        let imp = imputation::restaurant(&world, 3, 4);
        let qa = tableqa::medals(&world, 3, 8, 3);
        let docs = unidm_synthdata::extraction::nba_players(&world, 3);
        let lake: DataLake = [imp.table.clone(), qa.table.clone()].into_iter().collect();

        let rec = |pairs: &[(&str, &str)]| {
            SerializedRecord::new(
                pairs
                    .iter()
                    .map(|(a, v)| ((*a).to_string(), (*v).to_string()))
                    .collect(),
            )
        };
        let mut tasks = vec![
            Task::Transformation {
                examples: vec![
                    ("20000101".into(), "2000-01-01".into()),
                    ("19991231".into(), "1999-12-31".into()),
                ],
                input: "20210315".into(),
            },
            Task::ErrorDetection {
                table: "restaurants".into(),
                row: 0,
                attr: "city".into(),
            },
            Task::EntityResolution {
                a: rec(&[("name", "Blue Bottle"), ("city", "Oakland")]),
                b: rec(&[("name", "Blue Bottle Coffee"), ("city", "Oakland")]),
                pool: vec![(
                    rec(&[("name", "Ritual")]),
                    rec(&[("name", "Ritual Coffee")]),
                    true,
                )],
            },
            Task::JoinDiscovery {
                left_name: "fifa_ranking.country_abrv".into(),
                left_values: vec!["GER".into(), "ITA".into(), "FRA".into()],
                right_name: "countries.ISO".into(),
                right_values: vec!["GER".into(), "ITA".into(), "IND".into()],
            },
            Task::Extraction {
                document: docs.docs[0].text.clone(),
                attr: "height".into(),
            },
            Task::TableQa {
                table: "medals".into(),
                question: qa.questions[0].question.clone(),
            },
        ];
        tasks.extend(imputation_tasks(&imp, 4));

        let cache = PromptCache::new(&llm, 256);
        let runner = BatchRunner::new(&cache, PipelineConfig::paper_default()).with_workers(7);
        let serial = runner.with_workers(1).run(&lake, &tasks);
        let parallel = runner.run(&lake, &tasks);
        for (kind, (s, p)) in tasks
            .iter()
            .map(Task::kind)
            .zip(serial.iter().zip(&parallel))
        {
            let s = s
                .as_ref()
                .unwrap_or_else(|e| panic!("{kind:?} serial failed: {e}"));
            let p = p
                .as_ref()
                .unwrap_or_else(|e| panic!("{kind:?} parallel failed: {e}"));
            assert_eq!(
                s.answer, p.answer,
                "{kind:?} answer must not depend on scheduling"
            );
            assert_eq!(
                s.usage, p.usage,
                "{kind:?} usage must not depend on scheduling"
            );
        }
    }
}
