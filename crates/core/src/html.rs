//! HTML pre-processing for the information-extraction task (appendix E).
//!
//! A deliberately small tag stripper: extraction documents are
//! semi-structured pages, and the pipeline only needs their visible text
//! chunks in reading order.

/// Strips tags from HTML-ish text, inserting spaces at tag boundaries and
/// decoding the handful of entities the generators emit.
pub fn strip_tags(html: &str) -> String {
    let mut out = String::with_capacity(html.len());
    let mut in_tag = false;
    for c in html.chars() {
        match c {
            '<' => {
                in_tag = true;
                if !out.ends_with(' ') && !out.is_empty() {
                    out.push(' ');
                }
            }
            '>' => in_tag = false,
            c if !in_tag => out.push(c),
            _ => {}
        }
    }
    let decoded = out.replace("&nbsp;", " ").replace("&amp;", "&");
    decoded.split_whitespace().collect::<Vec<_>>().join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_simple_tags() {
        assert_eq!(strip_tags("<h1>Kevin Durant</h1>"), "Kevin Durant");
    }

    #[test]
    fn inserts_spaces_between_cells() {
        let s = strip_tags("<tr><th>Height</th><td>6 ft 10 in</td></tr>");
        assert_eq!(s, "Height 6 ft 10 in");
    }

    #[test]
    fn decodes_entities() {
        assert_eq!(strip_tags("<div>ht&nbsp;6 ft</div>"), "ht 6 ft");
    }

    #[test]
    fn empty_input() {
        assert_eq!(strip_tags(""), "");
    }

    #[test]
    fn text_without_tags_unchanged() {
        assert_eq!(strip_tags("plain  text"), "plain text");
    }
}
