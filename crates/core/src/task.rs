//! Task specifications: the `(R, S, T)` triples of the unified framework.

use unidm_llm::protocol::{SerializedRecord, TaskKind};

/// A data-manipulation task in the unified form of paper §3: a task kind
/// plus the records `R` and attributes `S` it touches.
///
/// `Eq + Hash` because the batch dedup planner groups byte-identical
/// tasks by hashing them directly (a run is a pure function of the task,
/// so equal tasks produce equal outputs).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Task {
    /// Fill the missing `attr` of row `row` in table `table`.
    Imputation {
        /// Table name in the lake.
        table: String,
        /// Row index of the record with the missing value.
        row: usize,
        /// The attribute to impute.
        attr: String,
        /// The attribute serving as primary key in prompts.
        key_attr: String,
    },
    /// Transform `input` according to `examples`.
    Transformation {
        /// Demonstration pairs (before, after).
        examples: Vec<(String, String)>,
        /// The value to transform.
        input: String,
    },
    /// Judge whether cell (`row`, `attr`) of `table` holds an error.
    ErrorDetection {
        /// Table name in the lake.
        table: String,
        /// Row index.
        row: usize,
        /// Attribute under judgement.
        attr: String,
    },
    /// Judge whether two records denote the same entity.
    EntityResolution {
        /// Record from catalogue A.
        a: SerializedRecord,
        /// Record from catalogue B.
        b: SerializedRecord,
        /// Labelled pairs available as a retrieval pool for demonstrations.
        pool: Vec<(SerializedRecord, SerializedRecord, bool)>,
    },
    /// Answer `question` over `table`.
    TableQa {
        /// Table name in the lake.
        table: String,
        /// The natural-language question.
        question: String,
    },
    /// Judge whether two columns are joinable.
    JoinDiscovery {
        /// Qualified left column name ("fifa_ranking.country_abrv").
        left_name: String,
        /// Left column values.
        left_values: Vec<String>,
        /// Qualified right column name.
        right_name: String,
        /// Right column values.
        right_values: Vec<String>,
    },
    /// Extract `attr` from a semi-structured document.
    Extraction {
        /// The raw document (HTML-ish).
        document: String,
        /// The attribute to extract.
        attr: String,
    },
}

impl Task {
    /// Convenience constructor for imputation tasks.
    pub fn imputation(
        table: impl Into<String>,
        row: usize,
        attr: impl Into<String>,
        key_attr: impl Into<String>,
    ) -> Self {
        Task::Imputation {
            table: table.into(),
            row,
            attr: attr.into(),
            key_attr: key_attr.into(),
        }
    }

    /// Convenience constructor for error detection tasks.
    pub fn error_detection(table: impl Into<String>, row: usize, attr: impl Into<String>) -> Self {
        Task::ErrorDetection {
            table: table.into(),
            row,
            attr: attr.into(),
        }
    }

    /// The protocol-level task kind.
    pub fn kind(&self) -> TaskKind {
        match self {
            Task::Imputation { .. } => TaskKind::Imputation,
            Task::Transformation { .. } => TaskKind::Transformation,
            Task::ErrorDetection { .. } => TaskKind::ErrorDetection,
            Task::EntityResolution { .. } => TaskKind::EntityResolution,
            Task::TableQa { .. } => TaskKind::TableQa,
            Task::JoinDiscovery { .. } => TaskKind::JoinDiscovery,
            Task::Extraction { .. } => TaskKind::Extraction,
        }
    }

    /// Whether this task uses the context-retrieval step at all (the paper
    /// skips it for transformation, which brings its own examples, and for
    /// extraction, whose instance is user-provided).
    pub fn uses_retrieval(&self) -> bool {
        !matches!(self, Task::Transformation { .. } | Task::Extraction { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_retrieval_flags() {
        let t = Task::imputation("t", 0, "city", "name");
        assert_eq!(t.kind(), TaskKind::Imputation);
        assert!(t.uses_retrieval());

        let t = Task::Transformation {
            examples: vec![],
            input: "x".into(),
        };
        assert_eq!(t.kind(), TaskKind::Transformation);
        assert!(!t.uses_retrieval());

        let t = Task::Extraction {
            document: "<html/>".into(),
            attr: "player".into(),
        };
        assert!(!t.uses_retrieval());
    }

    #[test]
    fn constructors() {
        let t = Task::error_detection("hospital", 3, "city");
        assert_eq!(t.kind(), TaskKind::ErrorDetection);
    }
}
