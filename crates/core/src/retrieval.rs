//! Step 1 — automatic context retrieval (paper §4.2).
//!
//! Meta-wise retrieval asks the LLM which candidate attributes help the
//! task (`p_rm`); instance-wise retrieval asks it to score sampled records
//! 0–3 for relevance (`p_ri`). The top-k records projected on the selected
//! attributes form the tabular context `C`. With retrieval disabled, both
//! choices fall back to uniform sampling — the ablation baseline.
//!
//! Caching note: although `p_rm` embeds a per-row query, which attributes
//! help is a property of the *table* (schema + target attribute), so
//! [`crate::canon`] generalizes these queries at
//! [`crate::CanonLevel::TableStem`] and every row of a table shares one
//! `p_rm` cache entry. `p_ri` is genuinely per-row — relevance is judged
//! against the target record — and is never folded.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use unidm_llm::protocol::{parse_pri_response, render_pri, render_prm, SerializedRecord, TaskKind};
use unidm_llm::LanguageModel;
use unidm_tablestore::Table;

use crate::{PipelineConfig, UniDmError};

/// The retrieved tabular context `C`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Context {
    /// Attributes selected meta-wise (the paper's `S_m`).
    pub attrs: Vec<String>,
    /// Retrieved records projected on those attributes (the paper's
    /// `R_m[S_m]`), already serialized.
    pub records: Vec<SerializedRecord>,
}

/// Runs meta-wise retrieval over the table's other attributes.
///
/// Returns the selected helper attributes (at least one; falls back to a
/// seeded random pick when disabled or when the model returns nothing
/// usable).
///
/// # Errors
///
/// Propagates LLM failures.
pub fn meta_wise(
    llm: &dyn LanguageModel,
    config: &PipelineConfig,
    task: TaskKind,
    query: &str,
    table: &Table,
    target_attr: &str,
) -> Result<Vec<String>, UniDmError> {
    let candidates: Vec<String> = table
        .schema()
        .names()
        .filter(|n| !n.eq_ignore_ascii_case(target_attr))
        .map(str::to_string)
        .collect();
    if candidates.is_empty() {
        return Ok(Vec::new());
    }
    if !config.meta_retrieval {
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5e7a);
        let mut pool = candidates;
        pool.shuffle(&mut rng);
        pool.truncate(1);
        return Ok(pool);
    }
    let prompt = render_prm(task, query, &candidates);
    let reply = llm.complete(&prompt)?;
    let mut picked: Vec<String> = reply
        .text
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| candidates.iter().any(|c| c.eq_ignore_ascii_case(s)))
        .collect();
    if picked.is_empty() {
        picked.push(candidates[0].clone());
    }
    Ok(picked)
}

/// Runs instance-wise retrieval: samples `config.sample_size` candidate
/// rows, asks the LLM for relevance scores, and keeps the top
/// `config.top_k`.
///
/// The returned records are projected on `key ∪ attrs ∪ target` so that
/// the context both identifies its subjects and exhibits target values.
///
/// # Errors
///
/// Propagates LLM failures and invalid attribute references.
#[allow(clippy::too_many_arguments)]
pub fn instance_wise(
    llm: &dyn LanguageModel,
    config: &PipelineConfig,
    task: TaskKind,
    query: &str,
    table: &Table,
    exclude_row: Option<usize>,
    attrs: &[String],
    target_attr: &str,
    key_attr: &str,
) -> Result<Context, UniDmError> {
    // Projection: key first (subject), then helper attrs, then the target.
    let mut proj: Vec<String> = Vec::new();
    let push_unique = |p: &mut Vec<String>, a: &str| {
        if !p.iter().any(|x| x.eq_ignore_ascii_case(a)) {
            if let Some(name) = table.schema().names().find(|n| n.eq_ignore_ascii_case(a)) {
                p.push(name.to_string());
            }
        }
    };
    push_unique(&mut proj, key_attr);
    for a in attrs {
        push_unique(&mut proj, a);
    }
    push_unique(&mut proj, target_attr);
    // Present attributes in schema order: the table's own column order is
    // the natural "logical order" the parsing step expects.
    proj.sort_by_key(|a| table.schema().index_of(a).unwrap_or(usize::MAX));

    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x1457);
    let exclude: Vec<usize> = exclude_row.into_iter().collect();
    let sampled = table.sample_rows(&mut rng, config.sample_size, &exclude);
    if sampled.is_empty() {
        return Ok(Context {
            attrs: attrs.to_vec(),
            records: Vec::new(),
        });
    }

    let serialize_row = |row: usize| -> Result<SerializedRecord, UniDmError> {
        let mut pairs = Vec::with_capacity(proj.len());
        for attr in &proj {
            let v = table.cell_value(row, attr)?;
            pairs.push(((*attr).to_string(), v.to_string()));
        }
        Ok(SerializedRecord::new(pairs))
    };

    let chosen: Vec<usize> = if config.instance_retrieval {
        let mut instances = Vec::with_capacity(sampled.len());
        for &row in &sampled {
            instances.push(serialize_row(row)?);
        }
        // Keep the scoring prompt inside the model's context window: drop
        // trailing candidates when the window is small (e.g. GPT-J's 2k).
        let budget = llm.context_window().saturating_sub(256);
        let mut used = unidm_text::count_tokens(query) + 64;
        let mut fit = 0usize;
        for inst in &instances {
            let cost = unidm_text::count_tokens(&inst.render()) + 4;
            if used + cost > budget {
                break;
            }
            used += cost;
            fit += 1;
        }
        let instances = &instances[..fit.max(1).min(instances.len())];
        let sampled = &sampled[..instances.len()];
        let prompt = render_pri(task, query, instances);
        let reply = llm.complete(&prompt)?;
        let mut scores = parse_pri_response(&reply.text);
        scores.sort_by_key(|&(i, s)| (std::cmp::Reverse(s), i));
        scores
            .into_iter()
            .take(config.top_k)
            .filter_map(|(i, _)| sampled.get(i).copied())
            .collect()
    } else {
        sampled.into_iter().take(config.top_k).collect()
    };

    let mut records = Vec::with_capacity(chosen.len());
    for row in chosen {
        records.push(serialize_row(row)?);
    }
    Ok(Context {
        attrs: attrs.to_vec(),
        records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use unidm_llm::{LlmProfile, MockLlm};
    use unidm_synthdata::imputation;
    use unidm_world::World;

    fn setup() -> (World, MockLlm) {
        let world = World::generate(7);
        let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), 1);
        (world, llm)
    }

    #[test]
    fn meta_wise_selects_informative_attr() {
        let (world, llm) = setup();
        let table = imputation::restaurant_table(&world);
        let picked = meta_wise(
            &llm,
            &PipelineConfig::paper_default(),
            TaskKind::Imputation,
            "Some Grill, city",
            &table,
            "city",
        )
        .unwrap();
        assert!(!picked.is_empty());
        assert!(
            picked.iter().any(|a| a == "addr" || a == "phone"),
            "informative attribute expected, got {picked:?}"
        );
    }

    #[test]
    fn meta_wise_disabled_is_random_but_valid() {
        let (world, llm) = setup();
        let table = imputation::restaurant_table(&world);
        let picked = meta_wise(
            &llm,
            &PipelineConfig::all_off(),
            TaskKind::Imputation,
            "Some Grill, city",
            &table,
            "city",
        )
        .unwrap();
        assert_eq!(picked.len(), 1);
        assert!(table.schema().contains(&picked[0]));
        assert_ne!(picked[0], "city");
    }

    #[test]
    fn instance_wise_returns_top_k_with_projection() {
        let (world, llm) = setup();
        let table = imputation::restaurant_table(&world);
        let target_rec = table.row(0).unwrap();
        let addr = target_rec
            .field(table.schema(), "addr")
            .unwrap()
            .to_string();
        let query = format!("name: X; addr: {addr}; city: ?");
        let ctx = instance_wise(
            &llm,
            &PipelineConfig::paper_default(),
            TaskKind::Imputation,
            &query,
            &table,
            Some(0),
            &["addr".to_string()],
            "city",
            "name",
        )
        .unwrap();
        assert_eq!(ctx.records.len(), 3);
        for r in &ctx.records {
            assert!(r.get("name").is_some());
            assert!(r.get("city").is_some());
        }
    }

    #[test]
    fn disabled_instance_retrieval_still_yields_k() {
        let (world, llm) = setup();
        let table = imputation::restaurant_table(&world);
        let ctx = instance_wise(
            &llm,
            &PipelineConfig::all_off(),
            TaskKind::Imputation,
            "q",
            &table,
            None,
            &["addr".to_string()],
            "city",
            "name",
        )
        .unwrap();
        assert_eq!(ctx.records.len(), 3);
    }

    #[test]
    fn retrieval_prefers_shared_street_records() {
        // Build a table where row 0's street reappears in row 1 only; the
        // scored retrieval should keep that neighbour.
        let (_, llm) = setup();
        let mut t = Table::builder("r")
            .columns(["name", "addr", "city"])
            .build();
        t.push_row(vec![
            "Target Grill".into(),
            "100 Pico Blvd".into(),
            unidm_tablestore::Value::Null,
        ])
        .unwrap();
        t.push_row(vec![
            "Neighbour".into(),
            "200 Pico Blvd".into(),
            "Los Angeles".into(),
        ])
        .unwrap();
        for i in 0..20 {
            t.push_row(vec![
                format!("Other{i}").into(),
                format!("{i} Elm St").into(),
                "Springfield".into(),
            ])
            .unwrap();
        }
        let ctx = instance_wise(
            &llm,
            &PipelineConfig::paper_default(),
            TaskKind::Imputation,
            "name: Target Grill; addr: 100 Pico Blvd; city: ?",
            &t,
            Some(0),
            &["addr".to_string()],
            "city",
            "name",
        )
        .unwrap();
        assert!(
            ctx.records
                .iter()
                .any(|r| r.get("name") == Some("Neighbour")),
            "neighbour on the same street should be retrieved: {:?}",
            ctx.records
        );
    }
}
