//! The resilient backend substrate: a production-grade client layer
//! between the prompt cache and the model endpoint.
//!
//! The paper assumes a well-behaved LLM endpoint; a deployed system must
//! survive timeouts, 429 rate limits and transient 5xx errors without
//! corrupting results. [`ResilientBackend`] wraps any
//! [`LanguageModel`] with the protection stack a hosted deployment needs,
//! composed in this order:
//!
//! ```text
//! PromptCache                  (hits stop here: zero rate-limit budget)
//!   └─ ResilientBackend
//!        ├─ concurrency gate   (bounded in-flight attempts)
//!        ├─ circuit breaker    (fail fast while the endpoint is down)
//!        ├─ token bucket       (client-side rate limiting, waits not errors)
//!        └─ retry loop         (exponential backoff, seeded jitter, deadline)
//!             └─ endpoint      (SimBackend fault injector → MockLlm, offline)
//! ```
//!
//! The cache sits *above* the backend, so hits never consume rate-limit
//! budget or retry attempts; misses flow down through the stack. Because
//! fault injection ([`unidm_llm::SimBackend`]) decides each attempt's fate
//! as a pure function of `(seed, prompt, attempt index)`, and successes
//! always return the inner model's deterministic completion, a faulty run
//! produces answers bit-identical to a fault-free run — serial, parallel,
//! cached or not — and aggregate endpoint-attempt counts are a pure
//! function of the workload and the plan, independent of thread
//! scheduling (retry counts too, unless the breaker is enabled — its
//! fast-fails consume retries in an order-sensitive way).
//!
//! All timing — token refill, backoff, breaker cooldown, injected latency
//! — runs on a shared [`Clock`], by default a [`VirtualClock`], so tests
//! replay multi-second fault schedules in microseconds of wall time.
//!
//! # Examples
//!
//! ```
//! use unidm::backend::BackendConfig;
//! use unidm_llm::{FaultPlan, LanguageModel, LlmProfile, MockLlm};
//! use unidm_world::World;
//!
//! let world = World::generate(42);
//! let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), 1);
//! let config = BackendConfig::resilient(7)
//!     .with_faults(FaultPlan::heavy(7))
//!     .with_rate_limit(50, 10);
//! let backend = config.wrap(&llm);
//!
//! let reply = backend.model().complete("The capital of Denmark is __.").unwrap();
//! assert_eq!(reply, llm.complete("The capital of Denmark is __.").unwrap(),
//!            "faults and throttling never change the answer");
//! let stats = backend.stats().unwrap();
//! assert_eq!(stats.calls, 1);
//! assert!(stats.attempts >= 1);
//! ```

use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use unidm_llm::{
    Clock, Completion, Dice, FaultPlan, FaultStats, LanguageModel, LlmError, SimBackend, Usage,
    VirtualClock,
};

use crate::dispatch::{Dispatcher, HedgePolicy};
use crate::route::{RoutePlan, RoutedBackend, RouterStats};

/// Retry policy: bounded exponential backoff with seeded jitter.
///
/// Backoff for retry `n` (1-based) doubles from
/// [`RetryPolicy::base_backoff_us`] up to [`RetryPolicy::max_backoff_us`],
/// then is jittered into `[50%, 100%]` of that value by a deterministic
/// draw keyed on `(seed, prompt, n)` — different prompts desynchronize,
/// identical runs reproduce exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RetryPolicy {
    /// Maximum retries per call (0 disables retrying). The default (32)
    /// covers every stock [`FaultPlan`]'s consecutive-fault cap with room
    /// for breaker fast-fails, whose count under parallel contention is
    /// interleaving-dependent (each is preceded by a cooldown-length
    /// sleep, so a deep budget costs nothing on a virtual clock).
    pub max_retries: u32,
    /// Backoff before the first retry, in microseconds.
    pub base_backoff_us: u64,
    /// Upper bound on a single backoff, in microseconds.
    pub max_backoff_us: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 32,
            base_backoff_us: 100_000,
            max_backoff_us: 10_000_000,
        }
    }
}

/// Token-bucket rate limit: `tokens_per_sec` sustained, `burst` tokens of
/// headroom. One token is consumed per attempt that reaches the endpoint;
/// an empty bucket makes the caller *wait* on the clock (it never errors),
/// so client-side throttling cannot change answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RateLimit {
    /// Sustained attempts per second. Must be at least 1.
    pub tokens_per_sec: u64,
    /// Bucket capacity (burst size). Must be at least 1.
    pub burst: u64,
}

impl RateLimit {
    /// A limit of `tokens_per_sec` with `burst` headroom (both clamped to
    /// at least 1).
    pub fn per_sec(tokens_per_sec: u64, burst: u64) -> Self {
        RateLimit {
            tokens_per_sec: tokens_per_sec.max(1),
            burst: burst.max(1),
        }
    }
}

/// Circuit-breaker policy: after `failure_threshold` consecutive attempt
/// failures the breaker opens for `cooldown_us`, rejecting calls without
/// touching the endpoint; the first call after the cooldown half-opens the
/// breaker as a probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BreakerPolicy {
    /// Consecutive failures that trip the breaker.
    pub failure_threshold: u32,
    /// How long the breaker stays open, in microseconds.
    pub cooldown_us: u64,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy {
            failure_threshold: 5,
            cooldown_us: 1_000_000,
        }
    }
}

/// Configuration of the resilient backend layer.
///
/// Integer-only fields keep the config `Eq`/`Hash` and every timing
/// decision exactly reproducible. The derived default is **disabled**
/// (`enabled: false`, no rate limit, no breaker, no faults, no deadline)
/// — wrapping with a disabled config is a pass-through, so existing eval
/// paths are byte-identical unless a caller opts in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct BackendConfig {
    /// Whether [`BackendConfig::wrap`] builds the protection stack at all.
    pub enabled: bool,
    /// Seed for backoff jitter (and anything else the backend randomizes).
    pub seed: u64,
    /// Maximum concurrent in-flight attempts (0 = unbounded).
    pub max_in_flight: u32,
    /// Client-side rate limit (`None` = unlimited).
    pub rate: Option<RateLimit>,
    /// Retry policy for transient failures.
    pub retry: RetryPolicy,
    /// Circuit breaker (`None` = disabled).
    pub breaker: Option<BreakerPolicy>,
    /// Per-call deadline in microseconds (0 = none): once a call has spent
    /// this much clock time across attempts and backoffs, it fails with
    /// [`LlmError::DeadlineExceeded`] instead of retrying further.
    pub deadline_us: u64,
    /// Optional fault-injection plan: when set, [`BackendConfig::wrap`]
    /// interposes a [`SimBackend`] between the retry loop and the inner
    /// model, sharing the backend's clock.
    pub faults: Option<FaultPlan>,
    /// Route calls through the event-driven dispatcher
    /// ([`crate::dispatch::Dispatcher`]) instead of the blocking stack:
    /// completions become scheduled events on a timer wheel, so concurrent
    /// requests overlap in virtual time instead of summing it, and an
    /// in-flight *budget* (not a thread count) bounds concurrency. The
    /// dispatcher implements rate pacing, retries and request coalescing;
    /// the breaker and per-call deadline remain blocking-stack features.
    pub pipelined: bool,
    /// Hedged-request policy (implies the dispatcher): stragglers
    /// exceeding the observed attempt-latency quantile get a duplicate
    /// attempt, first response wins, the loser is cancelled.
    pub hedge: Option<HedgePolicy>,
    /// Replica-routing plan (`None` = single endpoint): when set,
    /// [`BackendConfig::wrap`] builds a [`RoutedBackend`] fleet over the
    /// inner model — N weighted replicas, each with its own breaker, AIMD
    /// bucket and endpoint-aware fault injector. Routing takes precedence
    /// over [`BackendConfig::pipelined`]; to pipeline *over* a fleet,
    /// build the router explicitly and hand it to a
    /// [`crate::dispatch::Dispatcher`].
    pub route: Option<RoutePlan>,
}

impl BackendConfig {
    /// An enabled stack with default retrying and a default circuit
    /// breaker — the baseline a hosted deployment would start from.
    pub fn resilient(seed: u64) -> Self {
        BackendConfig {
            enabled: true,
            seed,
            breaker: Some(BreakerPolicy::default()),
            ..BackendConfig::default()
        }
    }

    /// Adds a token-bucket rate limit (builder-style).
    pub fn with_rate_limit(mut self, tokens_per_sec: u64, burst: u64) -> Self {
        self.rate = Some(RateLimit::per_sec(tokens_per_sec, burst));
        self
    }

    /// Replaces the retry policy (builder-style).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Replaces the circuit-breaker policy (builder-style).
    pub fn with_breaker(mut self, breaker: BreakerPolicy) -> Self {
        self.breaker = Some(breaker);
        self
    }

    /// Disables the circuit breaker (builder-style).
    pub fn without_breaker(mut self) -> Self {
        self.breaker = None;
        self
    }

    /// Sets the per-call deadline in microseconds (builder-style).
    pub fn with_deadline_us(mut self, deadline_us: u64) -> Self {
        self.deadline_us = deadline_us;
        self
    }

    /// Bounds concurrent in-flight attempts (builder-style).
    pub fn with_max_in_flight(mut self, max_in_flight: u32) -> Self {
        self.max_in_flight = max_in_flight;
        self
    }

    /// Interposes a seeded fault injector (builder-style).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Routes calls through the event-driven dispatcher (builder-style).
    pub fn with_pipelined(mut self) -> Self {
        self.pipelined = true;
        self
    }

    /// Enables hedged requests under the dispatcher (builder-style).
    pub fn with_hedge(mut self, hedge: HedgePolicy) -> Self {
        self.hedge = Some(hedge);
        self
    }

    /// Routes calls over a replica fleet per `plan` (builder-style).
    pub fn with_route(mut self, plan: RoutePlan) -> Self {
        self.route = Some(plan);
        self
    }

    /// Wraps `inner` according to this configuration: a pass-through when
    /// disabled, a [`RoutedBackend`] replica fleet when
    /// [`BackendConfig::route`] is set, the event-driven dispatcher when
    /// [`BackendConfig::pipelined`] or a hedge policy is set, the blocking
    /// protection stack otherwise (each on a fresh [`VirtualClock`]).
    pub fn wrap<'a>(&self, inner: &'a dyn LanguageModel) -> AttachedBackend<'a> {
        if !self.enabled {
            return AttachedBackend::Passthrough(inner);
        }
        if self.route.is_some() {
            return AttachedBackend::Routed(Box::new(RoutedBackend::from_plan(inner, *self)));
        }
        if self.pipelined || self.hedge.is_some() {
            return AttachedBackend::Dispatched(Box::new(Dispatcher::new(inner, *self)));
        }
        AttachedBackend::Resilient(Box::new(ResilientBackend::new(inner, *self)))
    }
}

/// Bucket count of a [`LatencySketch`]: 1 zero bucket plus 4 sub-buckets
/// per power of two, covering up to ~2^32 microseconds (larger samples
/// saturate into the last bucket).
const SKETCH_BUCKETS: usize = 128;

/// A streaming latency quantile estimator over **integer microseconds** —
/// the online P99 source the hedged-request timer arms from.
///
/// The sketch is a fixed histogram of base-√√2 log buckets (four
/// sub-buckets per power of two, ≤ 25% relative quantile error), so it is
/// `Copy`, `Eq`, allocation-free, and merges *exactly*: merging two
/// sketches is integer bucket addition, bit-identical regardless of merge
/// order. No floats are stored anywhere, which is what keeps hedging
/// decisions — and therefore whole virtual timelines — deterministic.
///
/// # Examples
///
/// ```
/// use unidm::backend::LatencySketch;
///
/// let mut sketch = LatencySketch::default();
/// for _ in 0..99 {
///     sketch.record(50_000); // 99 fast attempts
/// }
/// sketch.record(2_000_000); // one straggler
/// assert!(sketch.quantile_us(500) < 100_000, "the median is fast");
/// assert!(sketch.quantile_us(995) >= 2_000_000, "the tail is visible");
/// ```
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct LatencySketch {
    counts: [u64; SKETCH_BUCKETS],
    total: u64,
    max_us: u64,
    /// Smallest sample, exactly; `u64::MAX` while empty so that merging an
    /// empty sketch is the identity (`min` folds through unchanged).
    min_us: u64,
}

impl Default for LatencySketch {
    fn default() -> Self {
        LatencySketch {
            counts: [0; SKETCH_BUCKETS],
            total: 0,
            max_us: 0,
            min_us: u64::MAX,
        }
    }
}

impl std::fmt::Debug for LatencySketch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencySketch")
            .field("samples", &self.total)
            .field("min_us", &self.min_us())
            .field("p50_us", &self.quantile_us(500))
            .field("p99_us", &self.quantile_us(990))
            .field("max_us", &self.max_us)
            .finish()
    }
}

impl LatencySketch {
    fn bucket(us: u64) -> usize {
        if us == 0 {
            return 0;
        }
        let e = 63 - us.leading_zeros() as usize;
        let q = if e >= 2 {
            ((us >> (e - 2)) & 3) as usize
        } else {
            0
        };
        (1 + e * 4 + q).min(SKETCH_BUCKETS - 1)
    }

    /// Upper bound of bucket `idx` (the value a quantile in it reports).
    fn bucket_upper(idx: usize) -> u64 {
        if idx == 0 {
            return 0;
        }
        let e = (idx - 1) / 4;
        let q = ((idx - 1) % 4) as u64;
        let base = 1u64 << e;
        base + ((q + 1) * base) / 4
    }

    /// Records one latency sample, in microseconds.
    pub fn record(&mut self, us: u64) {
        self.counts[Self::bucket(us)] += 1;
        self.total += 1;
        self.max_us = self.max_us.max(us);
        self.min_us = self.min_us.min(us);
    }

    /// Samples recorded so far.
    pub fn samples(&self) -> u64 {
        self.total
    }

    /// The largest sample recorded, exactly.
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// The smallest sample recorded, exactly. Returns 0 when empty.
    pub fn min_us(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min_us
        }
    }

    /// The `permille`-th quantile (e.g. 990 = P99) in microseconds: the
    /// upper bound of the bucket holding that rank, clamped to the exact
    /// observed extremes. Returns 0 when empty.
    ///
    /// Rank 1 (permille 0, and any permille small enough that the rank
    /// rounds down to the first sample) is the observed minimum and is
    /// returned exactly — not the upper bound of the first occupied
    /// bucket, which would overestimate low quantiles by up to a bucket
    /// width.
    pub fn quantile_us(&self, permille: u32) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = (self.total * u64::from(permille.min(1000))).div_ceil(1000);
        if rank <= 1 {
            return self.min_us;
        }
        let mut seen = 0u64;
        for (idx, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Self::bucket_upper(idx).clamp(self.min_us, self.max_us);
            }
        }
        self.max_us
    }

    /// Adds every sample of `other` into this sketch — exact integer
    /// bucket addition, associative and commutative, so per-shard or
    /// per-dispatcher sketches fold into the same aggregate in any order.
    pub fn merge(&mut self, other: &LatencySketch) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.total += other.total;
        self.max_us = self.max_us.max(other.max_us);
        self.min_us = self.min_us.min(other.min_us);
    }
}

/// Counters of everything the backend layer did.
///
/// With a deterministic endpoint and fault schedule, re-running the same
/// serial workload reproduces these counters exactly. Under parallelism
/// the schedule-driven counters (`attempts` and the per-kind fault
/// tallies) stay workload-determined, while timing- and order-sensitive
/// ones (`breaker_*`, `throttle_*`) may vary with interleaving —
/// `retries` is schedule-driven only with the breaker disabled, because
/// each breaker fast-fail also consumes a retry.
///
/// The hedge counters (`hedges_*`, `dispatch_coalesced`) are produced by
/// the event-driven dispatcher (`unidm::dispatch`) and stay zero under
/// the blocking [`ResilientBackend`]; under the dispatcher's pipelined
/// mode they are fully deterministic. The two [`LatencySketch`] fields
/// aggregate exactly (see [`BackendStats::merge`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BackendStats {
    /// Logical `complete` calls that entered the backend.
    pub calls: u64,
    /// Attempts that reached the endpoint (each consumes one rate-limit
    /// token).
    pub attempts: u64,
    /// Retries across all calls (`attempts + breaker fast-fails - calls`
    /// for fully successful runs).
    pub retries: u64,
    /// Timeout errors observed from the endpoint.
    pub timeouts: u64,
    /// 429-style rate-limit rejections observed from the endpoint.
    pub rate_limited: u64,
    /// Transient 5xx-style errors observed from the endpoint.
    pub transients: u64,
    /// Closed→open breaker transitions.
    pub breaker_trips: u64,
    /// Calls rejected while the breaker was open (no endpoint attempt, no
    /// rate-limit token).
    pub breaker_fast_fails: u64,
    /// Attempts that had to wait for a rate-limit token.
    pub throttle_waits: u64,
    /// Total clock time spent waiting for tokens, in microseconds.
    pub throttle_wait_us: u64,
    /// Rate-limit tokens actually consumed. One per *logical* attempt:
    /// hedge duplicates never take a token, so under hedging this stays
    /// exactly one per winner (pinned by `tests/hedged_dispatch.rs`).
    pub rate_tokens: u64,
    /// Calls that failed with [`LlmError::DeadlineExceeded`].
    pub deadline_exceeded: u64,
    /// Calls that ultimately returned an error.
    pub failures: u64,
    /// Hedge duplicates issued (straggler exceeded the armed quantile).
    pub hedges_issued: u64,
    /// Hedges whose duplicate finished first (first-response-wins).
    pub hedges_won: u64,
    /// Attempts cancelled because the other copy won — the "losers", never
    /// delivered and never memoized.
    pub hedges_cancelled: u64,
    /// Hedge timers that fired while the in-flight budget was full; the
    /// hedge was skipped rather than queued.
    pub hedges_suppressed: u64,
    /// Logical calls the dispatcher served without a new endpoint
    /// dispatch: attached to an already-pending identical request
    /// (request-level single-flight) or answered from the dispatcher's
    /// memo of resolved prompts.
    pub dispatch_coalesced: u64,
    /// Latencies of successful endpoint attempts, the estimator hedge
    /// timers arm from. Exact under the event-driven dispatcher; under the
    /// blocking backend on a shared virtual clock, concurrent sleeps bleed
    /// into each other's measurements (informational there).
    pub attempt_latency: LatencySketch,
    /// End-to-end latencies of successful logical calls (submit → deliver).
    pub request_latency: LatencySketch,
}

impl BackendStats {
    /// Folds `other` into `self`. Every field is an exact integer
    /// addition (sketches merge bucket-wise), so aggregation across
    /// dispatchers or shards is order-independent and drift-free.
    pub fn merge(&mut self, other: &BackendStats) {
        self.calls += other.calls;
        self.attempts += other.attempts;
        self.retries += other.retries;
        self.timeouts += other.timeouts;
        self.rate_limited += other.rate_limited;
        self.transients += other.transients;
        self.breaker_trips += other.breaker_trips;
        self.breaker_fast_fails += other.breaker_fast_fails;
        self.throttle_waits += other.throttle_waits;
        self.throttle_wait_us += other.throttle_wait_us;
        self.rate_tokens += other.rate_tokens;
        self.deadline_exceeded += other.deadline_exceeded;
        self.failures += other.failures;
        self.hedges_issued += other.hedges_issued;
        self.hedges_won += other.hedges_won;
        self.hedges_cancelled += other.hedges_cancelled;
        self.hedges_suppressed += other.hedges_suppressed;
        self.dispatch_coalesced += other.dispatch_coalesced;
        self.attempt_latency.merge(&other.attempt_latency);
        self.request_latency.merge(&other.request_latency);
    }
}

/// One micro-token: the token bucket accounts in millionths of a token so
/// refill arithmetic is exact integers at any rate. Shared with the
/// dispatcher's virtual-scheduling bucket (`crate::dispatch`).
pub(crate) const TOKEN: u64 = 1_000_000;

#[derive(Debug)]
struct TokenBucket {
    /// Current content in micro-tokens.
    units: u64,
    /// Clock time of the last refill.
    last_us: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerHealth {
    Closed,
    Open,
    HalfOpen,
}

#[derive(Debug)]
struct BreakerState {
    health: BreakerHealth,
    consecutive_failures: u32,
    open_until_us: u64,
}

/// The endpoint under the protection stack: the caller's model directly,
/// or a fault injector owned by the backend when
/// [`BackendConfig::faults`] is set.
enum Endpoint<'a> {
    Direct(&'a dyn LanguageModel),
    // Boxed: the injector carries its plan and counters, and the direct
    // path should not pay its footprint.
    Sim(Box<SimBackend<'a>>),
}

impl Endpoint<'_> {
    fn model(&self) -> &dyn LanguageModel {
        match self {
            Endpoint::Direct(m) => *m,
            Endpoint::Sim(sim) => sim.as_ref(),
        }
    }
}

/// A semaphore bounding concurrent in-flight attempts.
struct Gate {
    limit: u32,
    in_flight: Mutex<u32>,
    freed: Condvar,
}

impl Gate {
    fn new(limit: u32) -> Self {
        Gate {
            limit,
            in_flight: Mutex::new(0),
            freed: Condvar::new(),
        }
    }

    fn acquire(&self) -> GatePermit<'_> {
        let mut count = self.in_flight.lock().expect("gate lock poisoned");
        while *count >= self.limit {
            count = self.freed.wait(count).expect("gate lock poisoned");
        }
        *count += 1;
        GatePermit { gate: self }
    }
}

struct GatePermit<'g> {
    gate: &'g Gate,
}

impl Drop for GatePermit<'_> {
    fn drop(&mut self) {
        let mut count = self.gate.in_flight.lock().expect("gate lock poisoned");
        *count -= 1;
        self.gate.freed.notify_one();
    }
}

/// The resilient client layer: bounded concurrency, token-bucket rate
/// limiting, exponential-backoff retry with seeded jitter, a circuit
/// breaker and per-call deadlines over any [`LanguageModel`].
///
/// See the [module docs](self) for the layering and determinism story.
pub struct ResilientBackend<'a> {
    endpoint: Endpoint<'a>,
    config: BackendConfig,
    clock: Arc<dyn Clock>,
    dice: Dice,
    bucket: Option<Mutex<TokenBucket>>,
    breaker: Option<Mutex<BreakerState>>,
    gate: Option<Gate>,
    stats: Mutex<BackendStats>,
}

impl std::fmt::Debug for ResilientBackend<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilientBackend")
            .field("endpoint", &self.endpoint.model().name())
            .field("config", &self.config)
            .field("stats", &self.stats())
            .finish()
    }
}

impl<'a> ResilientBackend<'a> {
    /// Builds the stack over `inner` on a fresh [`VirtualClock`].
    pub fn new(inner: &'a dyn LanguageModel, config: BackendConfig) -> Self {
        Self::with_clock(inner, config, Arc::new(VirtualClock::new()))
    }

    /// Builds the stack over `inner` on a caller-provided clock (e.g. a
    /// [`unidm_llm::SystemClock`] for a live endpoint).
    pub fn with_clock(
        inner: &'a dyn LanguageModel,
        config: BackendConfig,
        clock: Arc<dyn Clock>,
    ) -> Self {
        let endpoint = match config.faults {
            Some(plan) => {
                Endpoint::Sim(Box::new(SimBackend::with_clock(inner, plan, clock.clone())))
            }
            None => Endpoint::Direct(inner),
        };
        let now = clock.now_micros();
        ResilientBackend {
            endpoint,
            clock,
            dice: Dice::new(config.seed),
            bucket: config.rate.map(|rate| {
                Mutex::new(TokenBucket {
                    units: rate.burst * TOKEN,
                    last_us: now,
                })
            }),
            breaker: config.breaker.map(|_| {
                Mutex::new(BreakerState {
                    health: BreakerHealth::Closed,
                    consecutive_failures: 0,
                    open_until_us: 0,
                })
            }),
            gate: (config.max_in_flight > 0).then(|| Gate::new(config.max_in_flight)),
            config,
            stats: Mutex::new(BackendStats::default()),
        }
    }

    /// The configuration the stack runs with.
    pub fn config(&self) -> &BackendConfig {
        &self.config
    }

    /// The clock every timing decision runs on.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// A snapshot of the backend counters.
    pub fn stats(&self) -> BackendStats {
        *self.stats.lock().expect("backend stats lock poisoned")
    }

    /// Injection counters of the owned fault injector, when
    /// [`BackendConfig::faults`] is set.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        match &self.endpoint {
            Endpoint::Sim(sim) => Some(sim.stats()),
            Endpoint::Direct(_) => None,
        }
    }

    fn lock_stats(&self) -> MutexGuard<'_, BackendStats> {
        self.stats.lock().expect("backend stats lock poisoned")
    }

    /// Checks the breaker gate: `Ok` to proceed, `Err(remaining cooldown)`
    /// to fail fast. An expired cooldown half-opens the breaker, letting
    /// the caller through as a probe.
    fn breaker_check(&self) -> Result<(), u64> {
        let Some(breaker) = &self.breaker else {
            return Ok(());
        };
        let mut state = breaker.lock().expect("breaker lock poisoned");
        match state.health {
            BreakerHealth::Closed | BreakerHealth::HalfOpen => Ok(()),
            BreakerHealth::Open => {
                let now = self.clock.now_micros();
                if now >= state.open_until_us {
                    state.health = BreakerHealth::HalfOpen;
                    Ok(())
                } else {
                    Err(state.open_until_us - now)
                }
            }
        }
    }

    fn breaker_success(&self) {
        if let Some(breaker) = &self.breaker {
            let mut state = breaker.lock().expect("breaker lock poisoned");
            state.health = BreakerHealth::Closed;
            state.consecutive_failures = 0;
        }
    }

    /// Records an attempt failure; returns whether the breaker tripped
    /// (transitioned to open) on this failure.
    fn breaker_failure(&self) -> bool {
        let (Some(breaker), Some(policy)) = (&self.breaker, self.config.breaker) else {
            return false;
        };
        let mut state = breaker.lock().expect("breaker lock poisoned");
        state.consecutive_failures += 1;
        let should_open = state.health == BreakerHealth::HalfOpen
            || state.consecutive_failures >= policy.failure_threshold;
        if !should_open {
            return false;
        }
        let tripped = state.health != BreakerHealth::Open;
        state.health = BreakerHealth::Open;
        state.open_until_us = self.clock.now_micros() + policy.cooldown_us;
        tripped
    }

    /// Takes one rate-limit token, waiting on the clock if the bucket is
    /// empty. Returns the time waited, in microseconds.
    fn acquire_token(&self) -> u64 {
        let Some(bucket) = &self.bucket else {
            return 0;
        };
        let rate = self.config.rate.expect("bucket implies rate");
        let mut waited = 0u64;
        loop {
            {
                let mut b = bucket.lock().expect("bucket lock poisoned");
                let now = self.clock.now_micros();
                let elapsed = now.saturating_sub(b.last_us);
                let refill = u128::from(elapsed) * u128::from(rate.tokens_per_sec);
                let cap = u128::from(rate.burst) * u128::from(TOKEN);
                b.units = (u128::from(b.units) + refill).min(cap) as u64;
                b.last_us = now;
                if b.units >= TOKEN {
                    b.units -= TOKEN;
                    return waited;
                }
                // Not enough: wait exactly until one token has dripped in.
                let deficit = TOKEN - b.units;
                let wait = deficit.div_ceil(rate.tokens_per_sec);
                drop(b);
                self.clock.sleep_micros(wait);
                waited += wait;
            }
        }
    }

    /// Backoff before retry `n` (1-based) of `prompt`: exponential from
    /// the policy base, capped, then jittered into `[50%, 100%]` by a
    /// deterministic draw.
    fn backoff_us(&self, prompt: &str, retry: u32) -> u64 {
        let policy = self.config.retry;
        let doubled = policy
            .base_backoff_us
            .saturating_mul(1u64 << (retry - 1).min(32));
        let ceiling = doubled.min(policy.max_backoff_us);
        let jitter = self.dice.uniform(prompt, &format!("backoff-{retry}"));
        ceiling / 2 + ((ceiling / 2) as f64 * jitter) as u64
    }
}

impl LanguageModel for ResilientBackend<'_> {
    fn name(&self) -> &str {
        self.endpoint.model().name()
    }

    fn complete(&self, prompt: &str) -> Result<Arc<Completion>, LlmError> {
        self.lock_stats().calls += 1;
        let start = self.clock.now_micros();
        let deadline = (self.config.deadline_us > 0).then(|| start + self.config.deadline_us);
        let _permit = self.gate.as_ref().map(Gate::acquire);

        let mut retry = 0u32;
        loop {
            if let Some(d) = deadline {
                if self.clock.now_micros() >= d {
                    let mut stats = self.lock_stats();
                    stats.deadline_exceeded += 1;
                    stats.failures += 1;
                    return Err(LlmError::DeadlineExceeded {
                        deadline_us: self.config.deadline_us,
                    });
                }
            }
            let err = match self.breaker_check() {
                Err(cooldown_us) => {
                    self.lock_stats().breaker_fast_fails += 1;
                    LlmError::CircuitOpen { cooldown_us }
                }
                Ok(()) => {
                    let waited = self.acquire_token();
                    {
                        let mut stats = self.lock_stats();
                        if waited > 0 {
                            stats.throttle_waits += 1;
                            stats.throttle_wait_us += waited;
                        }
                        if self.bucket.is_some() {
                            stats.rate_tokens += 1;
                        }
                        stats.attempts += 1;
                    }
                    let attempt_start = self.clock.now_micros();
                    match self.endpoint.model().complete(prompt) {
                        Ok(completion) => {
                            self.breaker_success();
                            let now = self.clock.now_micros();
                            let mut stats = self.lock_stats();
                            stats.attempt_latency.record(now - attempt_start);
                            stats.request_latency.record(now - start);
                            return Ok(completion);
                        }
                        Err(e) if e.is_transient() => {
                            {
                                let mut stats = self.lock_stats();
                                match &e {
                                    LlmError::Timeout { .. } => stats.timeouts += 1,
                                    LlmError::RateLimited { .. } => stats.rate_limited += 1,
                                    LlmError::Transient { .. } => stats.transients += 1,
                                    _ => {}
                                }
                            }
                            if self.breaker_failure() {
                                self.lock_stats().breaker_trips += 1;
                            }
                            e
                        }
                        Err(e) => {
                            // Permanent: retrying the identical call cannot
                            // succeed, so surface it immediately.
                            self.lock_stats().failures += 1;
                            return Err(e);
                        }
                    }
                }
            };
            if retry >= self.config.retry.max_retries {
                self.lock_stats().failures += 1;
                return Err(err);
            }
            retry += 1;
            self.lock_stats().retries += 1;
            let mut backoff = self.backoff_us(prompt, retry);
            // Honor server hints and breaker cooldowns: sleeping less than
            // either would burn a retry on a guaranteed rejection.
            match err {
                LlmError::RateLimited { retry_after_us } => backoff = backoff.max(retry_after_us),
                LlmError::CircuitOpen { cooldown_us } => backoff = backoff.max(cooldown_us),
                _ => {}
            }
            self.clock.sleep_micros(backoff);
        }
    }

    fn usage(&self) -> Usage {
        self.endpoint.model().usage()
    }

    fn reset_usage(&self) {
        self.endpoint.model().reset_usage();
    }

    fn context_window(&self) -> usize {
        self.endpoint.model().context_window()
    }

    fn latency_profile(&self) -> unidm_llm::LatencyProfile {
        self.endpoint.model().latency_profile()
    }
}

/// A model reference optionally wrapped in a configured
/// [`ResilientBackend`] (see [`BackendConfig::wrap`]) — the shape the eval
/// drivers thread between their raw model and their prompt cache.
pub enum AttachedBackend<'a> {
    /// Backend disabled: calls go straight to the inner model.
    Passthrough(&'a dyn LanguageModel),
    /// The full protection stack (boxed — the stack carries limiter,
    /// breaker and stats state the pass-through should not pay for).
    Resilient(Box<ResilientBackend<'a>>),
    /// The event-driven dispatcher ([`BackendConfig::pipelined`] or a
    /// hedge policy): completions are scheduled events on a timer wheel,
    /// concurrent requests overlap in virtual time, and stragglers can be
    /// hedged. Calls through [`AttachedBackend::model`] use the
    /// dispatcher's self-driving mode, so existing eval drivers work
    /// unchanged.
    Dispatched(Box<Dispatcher<'a>>),
    /// A replica-routing fleet ([`BackendConfig::route`]): calls are
    /// spread over N weighted endpoints, each with its own breaker, AIMD
    /// bucket and endpoint-aware fault injector.
    Routed(Box<RoutedBackend<'a>>),
}

impl<'a> AttachedBackend<'a> {
    /// The model callers should talk to (and, typically, layer a
    /// [`crate::PromptCache`] over).
    pub fn model(&self) -> &dyn LanguageModel {
        match self {
            AttachedBackend::Passthrough(m) => *m,
            AttachedBackend::Resilient(b) => b.as_ref(),
            AttachedBackend::Dispatched(d) => d.as_ref(),
            AttachedBackend::Routed(r) => r.as_ref(),
        }
    }

    /// Backend counters, when the stack is enabled (for a router: its
    /// counters projected into the flat shape, per
    /// [`RouterStats::backend_stats`]).
    pub fn stats(&self) -> Option<BackendStats> {
        match self {
            AttachedBackend::Passthrough(_) => None,
            AttachedBackend::Resilient(b) => Some(b.stats()),
            AttachedBackend::Dispatched(d) => Some(d.stats()),
            AttachedBackend::Routed(r) => Some(r.backend_stats()),
        }
    }

    /// Per-endpoint router counters, when this backend is a
    /// [`RoutedBackend`].
    pub fn router_stats(&self) -> Option<RouterStats> {
        match self {
            AttachedBackend::Routed(r) => Some(r.stats()),
            _ => None,
        }
    }

    /// Fault-injection counters, when a [`FaultPlan`] is configured (for
    /// a router: merged across all endpoint injectors).
    pub fn fault_stats(&self) -> Option<FaultStats> {
        match self {
            AttachedBackend::Passthrough(_) => None,
            AttachedBackend::Resilient(b) => b.fault_stats(),
            AttachedBackend::Dispatched(d) => d.fault_stats(),
            AttachedBackend::Routed(r) => r.fault_stats(),
        }
    }

    /// Virtual elapsed time of the backend's clock, in microseconds (0
    /// for a pass-through).
    pub fn elapsed_us(&self) -> u64 {
        match self {
            AttachedBackend::Passthrough(_) => 0,
            AttachedBackend::Resilient(b) => b.clock().now_micros(),
            AttachedBackend::Dispatched(d) => d.clock().now_micros(),
            AttachedBackend::Routed(r) => r.clock().now_micros(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unidm_llm::{LlmProfile, MockLlm};
    use unidm_world::World;

    fn model() -> MockLlm {
        MockLlm::new(&World::generate(7), LlmProfile::gpt3_175b(), 7)
    }

    #[test]
    fn disabled_config_is_a_pass_through() {
        let llm = model();
        let attached = BackendConfig::default().wrap(&llm);
        assert!(attached.stats().is_none());
        assert!(attached.fault_stats().is_none());
        assert_eq!(attached.elapsed_us(), 0);
        let direct = llm.complete("hello world").unwrap();
        assert_eq!(attached.model().complete("hello world").unwrap(), direct);
    }

    #[test]
    fn faulty_backend_returns_the_inner_answer() {
        let llm = model();
        let truth = llm.complete("The capital of Denmark is __.").unwrap();
        for seed in [1, 2, 3] {
            let backend = ResilientBackend::new(
                &llm,
                BackendConfig::resilient(seed).with_faults(FaultPlan::heavy(seed)),
            );
            let reply = backend.complete("The capital of Denmark is __.").unwrap();
            assert_eq!(reply, truth, "seed {seed}");
            let stats = backend.stats();
            assert_eq!(stats.calls, 1);
            assert_eq!(stats.failures, 0);
            assert_eq!(
                stats.retries,
                stats.attempts + stats.breaker_fast_fails - stats.calls,
                "every non-final attempt or fast-fail is a retry"
            );
        }
    }

    #[test]
    fn retries_are_reproducible_per_seed() {
        let llm = model();
        let run = || {
            let backend = ResilientBackend::new(
                &llm,
                BackendConfig::resilient(9).with_faults(FaultPlan::heavy(9)),
            );
            for i in 0..25 {
                backend.complete(&format!("prompt number {i}")).unwrap();
            }
            (backend.stats(), backend.fault_stats().unwrap())
        };
        assert_eq!(run(), run(), "same seed must reproduce every counter");
    }

    #[test]
    fn rate_limiter_paces_attempts_on_the_clock() {
        let llm = model();
        // 10 attempts/sec, burst 1: 20 calls need >= 1.9 virtual seconds.
        let backend =
            ResilientBackend::new(&llm, BackendConfig::resilient(1).with_rate_limit(10, 1));
        for i in 0..20 {
            backend.complete(&format!("paced prompt {i}")).unwrap();
        }
        let stats = backend.stats();
        assert_eq!(stats.attempts, 20);
        assert_eq!(stats.throttle_waits, 19, "everything after the burst waits");
        assert!(
            backend.clock().now_micros() >= 1_900_000,
            "virtual time must cover the token deficit: {}us",
            backend.clock().now_micros()
        );
        assert!(stats.throttle_wait_us >= 1_900_000);
    }

    #[test]
    fn rate_limited_errors_honor_retry_after() {
        let llm = model();
        let plan = FaultPlan {
            rate_limit_permille: 1000,
            timeout_permille: 0,
            transient_permille: 0,
            slow_permille: 0,
            max_consecutive_faults: 2,
            ..FaultPlan::none(3)
        };
        let backend = ResilientBackend::new(
            &llm,
            BackendConfig::resilient(3)
                .without_breaker()
                .with_faults(plan),
        );
        backend.complete("throttled prompt").unwrap();
        let stats = backend.stats();
        assert_eq!(stats.rate_limited, 2, "two 429s before the forced success");
        // Each retry slept at least the server's retry-after hint.
        assert!(
            backend.clock().now_micros() >= 2 * backend.config().retry.base_backoff_us.min(250_000),
        );
    }

    #[test]
    fn breaker_trips_fast_fails_and_recovers() {
        let llm = model();
        let backend = ResilientBackend::new(
            &llm,
            BackendConfig::resilient(5)
                .with_breaker(BreakerPolicy {
                    failure_threshold: 2,
                    cooldown_us: 500_000,
                })
                .with_faults(FaultPlan::always_faulty(5, 4)),
        );
        // Every prompt needs 4 faults absorbed; threshold 2 trips the
        // breaker mid-call, fast-fails once, then recovers via a probe.
        for i in 0..6 {
            backend.complete(&format!("stormy prompt {i}")).unwrap();
        }
        let stats = backend.stats();
        assert!(stats.breaker_trips >= 1, "breaker must trip: {stats:?}");
        assert!(
            stats.breaker_fast_fails >= 1,
            "open breaker must fast-fail: {stats:?}"
        );
        assert_eq!(stats.failures, 0, "every call still completes");
    }

    #[test]
    fn deadline_exceeded_is_a_clean_permanent_error() {
        let llm = model();
        let backend = ResilientBackend::new(
            &llm,
            BackendConfig::resilient(1)
                .without_breaker()
                .with_faults(FaultPlan::always_faulty(1, 8))
                .with_deadline_us(200_000),
        );
        // Every attempt faults and costs >= base latency (50ms), so the
        // 200ms deadline expires before the forced success at attempt 9.
        let err = backend.complete("doomed prompt").unwrap_err();
        assert_eq!(
            err,
            LlmError::DeadlineExceeded {
                deadline_us: 200_000
            }
        );
        assert!(!err.is_transient());
        let stats = backend.stats();
        assert_eq!(stats.deadline_exceeded, 1);
        assert_eq!(stats.failures, 1);
    }

    #[test]
    fn permanent_errors_are_not_retried() {
        let llm = model();
        let backend = ResilientBackend::new(&llm, BackendConfig::resilient(1));
        assert_eq!(backend.complete("  "), Err(LlmError::EmptyPrompt));
        let stats = backend.stats();
        assert_eq!((stats.attempts, stats.retries), (1, 0));
        assert_eq!(stats.failures, 1);
    }

    #[test]
    fn bounded_concurrency_gate_admits_everything_eventually() {
        let llm = model();
        let backend = ResilientBackend::new(
            &llm,
            BackendConfig::resilient(2)
                .with_max_in_flight(2)
                .with_faults(FaultPlan::light(2)),
        );
        std::thread::scope(|scope| {
            for t in 0..6 {
                let backend = &backend;
                scope.spawn(move || {
                    for i in 0..5 {
                        backend.complete(&format!("gated {t}-{i}")).unwrap();
                    }
                });
            }
        });
        let stats = backend.stats();
        assert_eq!(stats.calls, 30);
        assert_eq!(stats.failures, 0);
    }

    #[test]
    fn backend_forwards_identity_and_usage() {
        let llm = model();
        let backend = ResilientBackend::new(&llm, BackendConfig::resilient(1));
        assert_eq!(backend.name(), llm.name());
        assert_eq!(backend.context_window(), llm.context_window());
        backend.complete("hello").unwrap();
        assert_eq!(backend.usage(), llm.usage());
        backend.reset_usage();
        assert_eq!(llm.usage(), Usage::default());
    }

    #[test]
    fn latency_sketch_quantiles_bound_the_samples() {
        let mut sketch = LatencySketch::default();
        assert_eq!(sketch.quantile_us(990), 0, "empty sketch reports zero");
        for us in [0u64, 1, 50_000, 50_000, 50_000, 2_000_000] {
            sketch.record(us);
        }
        assert_eq!(sketch.samples(), 6);
        assert_eq!(sketch.max_us(), 2_000_000);
        assert_eq!(sketch.quantile_us(1000), 2_000_000, "P100 is the exact max");
        // Bucket upper bounds: a reported quantile never undershoots the
        // true rank value by more than one sub-bucket (≤25% relative).
        let p50 = sketch.quantile_us(500);
        assert!((50_000..=62_500).contains(&p50), "P50 ~50ms, got {p50}");
        assert!(sketch.quantile_us(990) >= 2_000_000, "the tail is visible");
    }

    #[test]
    fn latency_sketch_merge_is_exact_and_order_independent() {
        let samples: Vec<u64> = (0..200u64).map(|i| (i * i * 997) % 3_000_000).collect();
        let mut whole = LatencySketch::default();
        for &us in &samples {
            whole.record(us);
        }
        // Split the samples three ways, merge the parts in two different
        // orders: integer bucket addition must reproduce the whole sketch
        // bit-for-bit (`Eq`, no floats anywhere).
        let mut parts = [LatencySketch::default(); 3];
        for (i, &us) in samples.iter().enumerate() {
            parts[i % 3].record(us);
        }
        let mut forward = LatencySketch::default();
        for part in &parts {
            forward.merge(part);
        }
        let mut backward = LatencySketch::default();
        for part in parts.iter().rev() {
            backward.merge(part);
        }
        assert_eq!(forward, whole, "merge must equal recording everything");
        assert_eq!(backward, whole, "merge must be order-independent");
        assert_eq!(forward.quantile_us(990), whole.quantile_us(990));
    }

    #[test]
    fn latency_sketch_matches_sorted_sample_oracle() {
        // Three sample shapes: uniform spread, heavy-tailed, and a
        // single-bucket cluster (where the old rank math overshot p0).
        let shapes: [Vec<u64>; 3] = [
            (0..500u64).map(|i| 17 + i * 911).collect(),
            (0..300u64)
                .map(|i| {
                    if i % 50 == 0 {
                        2_000_000 + i
                    } else {
                        40_000 + (i % 7)
                    }
                })
                .collect(),
            vec![50_001; 64],
        ];
        for samples in &shapes {
            let mut sketch = LatencySketch::default();
            for &us in samples {
                sketch.record(us);
            }
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            let min = sorted[0];
            let max = *sorted.last().unwrap();
            assert_eq!(sketch.min_us(), min, "p0 must be the exact minimum");
            assert_eq!(sketch.quantile_us(0), min, "p0 must be the exact minimum");
            assert_eq!(sketch.quantile_us(1000), max, "p100 is the exact maximum");
            for permille in [1u32, 10, 100, 250, 500, 900, 990, 999] {
                let rank = ((sorted.len() as u64) * u64::from(permille)).div_ceil(1000);
                let oracle = sorted[rank.max(1) as usize - 1];
                let got = sketch.quantile_us(permille);
                // The sketch reports the upper bound of the oracle's
                // bucket: never below the true value, never more than one
                // sub-bucket (≤25% relative, +2 for integer rounding)
                // above it.
                assert!(
                    got >= oracle,
                    "p{permille} undershoots: {got} < oracle {oracle}"
                );
                assert!(
                    got <= oracle + oracle / 4 + 2,
                    "p{permille} overshoots its bucket: {got} vs oracle {oracle}"
                );
            }
        }
    }

    #[test]
    fn latency_sketch_min_tracking_survives_merge_identity() {
        let mut sketch = LatencySketch::default();
        sketch.record(700);
        sketch.record(90);
        let snapshot = sketch;
        // Merging an empty sketch is the identity (min folds through the
        // u64::MAX sentinel), and min merges exactly in either direction.
        sketch.merge(&LatencySketch::default());
        assert_eq!(sketch, snapshot);
        let mut other = LatencySketch::default();
        other.record(40);
        sketch.merge(&other);
        assert_eq!(sketch.min_us(), 40);
        assert_eq!(LatencySketch::default().min_us(), 0, "empty reports zero");
    }

    #[test]
    fn backend_stats_merge_adds_every_counter_exactly() {
        let llm = model();
        // Two independent faulty backends produce two non-trivial stats.
        let run = |seed: u64| {
            let backend = ResilientBackend::new(
                &llm,
                BackendConfig::resilient(seed)
                    .without_breaker()
                    .with_faults(FaultPlan::moderate(seed)),
            );
            for i in 0..10 {
                backend
                    .complete(&format!("merge probe {seed}-{i}"))
                    .unwrap();
            }
            backend.stats()
        };
        let a = run(7);
        let b = run(1337);
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba, "merge is commutative, sketches included");
        assert_eq!(ab.calls, a.calls + b.calls);
        assert_eq!(ab.attempts, a.attempts + b.attempts);
        assert_eq!(ab.retries, a.retries + b.retries);
        assert_eq!(
            ab.attempt_latency.samples(),
            a.attempt_latency.samples() + b.attempt_latency.samples()
        );
        assert_eq!(
            ab.request_latency.samples(),
            a.request_latency.samples() + b.request_latency.samples()
        );
        assert_eq!(
            ab.attempt_latency.max_us(),
            a.attempt_latency.max_us().max(b.attempt_latency.max_us())
        );
        // Merging a default is the identity.
        let mut id = a;
        id.merge(&BackendStats::default());
        assert_eq!(id, a);
    }
}
