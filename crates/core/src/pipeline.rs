//! The UniDM pipeline: Algorithm 1 of the paper.
//!
//! A [`UniDm`] holds a `&dyn LanguageModel`, so the whole pipeline composes
//! with the execution substrates in [`crate::exec`]: hand it a
//! [`crate::PromptCache`] to deduplicate the retrieval/parsing prompts
//! shared across runs, and drive many runs at once with
//! [`crate::BatchRunner`]. Per-run token cost is metered locally (see
//! [`UniDm::run`]), so neither caching nor scheduling changes what a run
//! reports.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use unidm_llm::protocol::{
    claim_query_er, claim_query_imputation, naturalize_record, Claim, SerializedRecord,
};
use unidm_llm::{LanguageModel, Usage, UsageMeter};
use unidm_tablestore::{DataLake, Table};

use crate::retrieval::{instance_wise, meta_wise, Context};
use crate::task::Task;
use crate::{parsing, prompting, PipelineConfig, UniDmError};

/// What the pipeline did on one run — retrieved attributes and records, the
/// parsed context, the final prompt. Useful for debugging and for the
/// paper's worked examples (appendix B).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Attributes selected by meta-wise retrieval.
    pub selected_attrs: Vec<String>,
    /// Retrieved context records, serialized.
    pub context_records: Vec<String>,
    /// The context text fed into the claim (`C'` or `V`).
    pub context_text: String,
    /// The final target prompt (`p_as`).
    pub target_prompt: String,
}

/// The outcome of one pipeline run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutput {
    /// The model's answer `Y`.
    pub answer: String,
    /// Tokens consumed by this run (all pipeline calls included).
    pub usage: Usage,
    /// The run trace.
    pub trace: Trace,
}

/// The UniDM pipeline bound to a language model and a configuration.
#[derive(Clone)]
pub struct UniDm<'a> {
    llm: &'a dyn LanguageModel,
    config: PipelineConfig,
}

impl std::fmt::Debug for UniDm<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UniDm")
            .field("llm", &self.llm.name())
            .field("config", &self.config)
            .finish()
    }
}

impl<'a> UniDm<'a> {
    /// Creates a pipeline.
    pub fn new(llm: &'a dyn LanguageModel, config: PipelineConfig) -> Self {
        UniDm { llm, config }
    }

    /// The pipeline's configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Runs the pipeline on `task` over `lake` (Algorithm 1).
    ///
    /// Per-run token cost is metered locally: every LLM call of this run
    /// goes through a fresh [`UsageMeter`] that sums the per-call usage
    /// reported inside each [`unidm_llm::Completion`]. The shared model's
    /// cumulative counter is never read, so concurrent runs against one
    /// model each report exactly their own cost.
    ///
    /// # Errors
    ///
    /// Returns [`UniDmError::InvalidTask`] for references outside the lake,
    /// and propagates LLM/table errors.
    pub fn run(&self, lake: &DataLake, task: &Task) -> Result<RunOutput, UniDmError> {
        let meter = UsageMeter::new(self.llm);
        let (answer, trace) = self.dispatch(&meter, lake, task)?;
        Ok(RunOutput {
            answer,
            usage: meter.used(),
            trace,
        })
    }

    fn dispatch(
        &self,
        llm: &dyn LanguageModel,
        lake: &DataLake,
        task: &Task,
    ) -> Result<(String, Trace), UniDmError> {
        match task {
            Task::Imputation {
                table,
                row,
                attr,
                key_attr,
            } => self.run_imputation(llm, lake, table, *row, attr, key_attr),
            Task::Transformation { examples, input } => {
                self.run_transformation(llm, examples, input)
            }
            Task::ErrorDetection { table, row, attr } => {
                self.run_error_detection(llm, lake, table, *row, attr)
            }
            Task::EntityResolution { a, b, pool } => self.run_er(llm, a, b, pool),
            Task::TableQa { table, question } => self.run_tableqa(llm, lake, table, question),
            Task::JoinDiscovery {
                left_name,
                left_values,
                right_name,
                right_values,
            } => self.run_join(llm, left_name, left_values, right_name, right_values),
            Task::Extraction { document, attr } => self.run_extraction(llm, document, attr),
        }
    }

    fn finish(
        &self,
        llm: &dyn LanguageModel,
        claim: Claim,
        selected_attrs: Vec<String>,
        context: &Context,
    ) -> Result<(String, Trace), UniDmError> {
        let target_prompt = prompting::build_target_prompt(llm, &self.config, &claim)?;
        let answer = prompting::answer(llm, &target_prompt)?;
        Ok((
            answer,
            Trace {
                selected_attrs,
                context_records: context
                    .records
                    .iter()
                    .map(SerializedRecord::render)
                    .collect(),
                context_text: claim.context,
                target_prompt,
            },
        ))
    }

    fn target_record(
        table: &Table,
        row: usize,
        attr: &str,
    ) -> Result<SerializedRecord, UniDmError> {
        let rec = table.row_at(row)?;
        let mut pairs = Vec::new();
        for (i, name) in table.schema().names().enumerate() {
            let v = rec.get(i).map(|v| v.to_string()).unwrap_or_default();
            if name.eq_ignore_ascii_case(attr) || v.is_empty() {
                continue;
            }
            pairs.push((name.to_string(), v));
        }
        Ok(SerializedRecord::new(pairs))
    }

    fn run_imputation(
        &self,
        llm: &dyn LanguageModel,
        lake: &DataLake,
        table: &str,
        row: usize,
        attr: &str,
        key_attr: &str,
    ) -> Result<(String, Trace), UniDmError> {
        let table = lake.require(table)?;
        table.schema().require(attr)?;
        let record = Self::target_record(table, row, attr)?;
        let key = record.get(key_attr).unwrap_or_default().to_string();
        let meta_query = format!("{key}, {attr}");
        let attrs = meta_wise(
            llm,
            &self.config,
            unidm_llm::protocol::TaskKind::Imputation,
            &meta_query,
            table,
            attr,
        )?;
        let instance_query = claim_query_imputation(&record, attr);
        let context = instance_wise(
            llm,
            &self.config,
            unidm_llm::protocol::TaskKind::Imputation,
            &instance_query,
            table,
            Some(row),
            &attrs,
            attr,
            key_attr,
        )?;
        let context_text = parsing::parse_context(llm, &self.config, &context.records)?;
        let claim = Claim {
            task: unidm_llm::protocol::TaskKind::Imputation,
            context: context_text,
            query: instance_query,
        };
        self.finish(llm, claim, attrs, &context)
    }

    fn run_transformation(
        &self,
        llm: &dyn LanguageModel,
        examples: &[(String, String)],
        input: &str,
    ) -> Result<(String, Trace), UniDmError> {
        let records: Vec<SerializedRecord> = examples
            .iter()
            .map(|(i, o)| {
                SerializedRecord::new(vec![
                    ("before".to_string(), i.clone()),
                    ("after".to_string(), o.clone()),
                ])
            })
            .collect();
        let context = Context {
            attrs: Vec::new(),
            records,
        };
        let context_text = parsing::parse_context(llm, &self.config, &context.records)?;
        let claim = Claim {
            task: unidm_llm::protocol::TaskKind::Transformation,
            context: context_text,
            query: format!("{input}: ?"),
        };
        self.finish(llm, claim, Vec::new(), &context)
    }

    fn run_error_detection(
        &self,
        llm: &dyn LanguageModel,
        lake: &DataLake,
        table: &str,
        row: usize,
        attr: &str,
    ) -> Result<(String, Trace), UniDmError> {
        let table = lake.require(table)?;
        let value = table.cell_value(row, attr)?.to_string();
        let query = format!("{attr}: {value}?");
        let attrs = meta_wise(
            llm,
            &self.config,
            unidm_llm::protocol::TaskKind::ErrorDetection,
            &query,
            table,
            attr,
        )?;
        let key_attr = table.schema().names().next().unwrap_or(attr).to_string();
        let context = instance_wise(
            llm,
            &self.config,
            unidm_llm::protocol::TaskKind::ErrorDetection,
            &query,
            table,
            Some(row),
            &attrs,
            attr,
            &key_attr,
        )?;
        let context_text = parsing::parse_context(llm, &self.config, &context.records)?;
        let claim = Claim {
            task: unidm_llm::protocol::TaskKind::ErrorDetection,
            context: context_text,
            query,
        };
        self.finish(llm, claim, attrs, &context)
    }

    fn run_er(
        &self,
        llm: &dyn LanguageModel,
        a: &SerializedRecord,
        b: &SerializedRecord,
        pool: &[(SerializedRecord, SerializedRecord, bool)],
    ) -> Result<(String, Trace), UniDmError> {
        let nat = |r: &SerializedRecord| naturalize_record(r).trim_end_matches('.').to_string();
        // Demonstration retrieval: the labelled pool plays the role of the
        // data lake; pick the pairs most relevant to the query pair.
        let query_text = format!("{} versus {}", nat(a), nat(b));
        let mut demo_records: Vec<SerializedRecord> = pool
            .iter()
            .map(|(da, db, label)| {
                SerializedRecord::new(vec![
                    (
                        "entities".to_string(),
                        format!("{} versus {}", nat(da), nat(db)),
                    ),
                    (
                        "label".to_string(),
                        if *label {
                            "the same".to_string()
                        } else {
                            "different".to_string()
                        },
                    ),
                ])
            })
            .collect();
        let context = if demo_records.is_empty() {
            Context::default()
        } else if self.config.instance_retrieval {
            let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0xE12);
            demo_records.shuffle(&mut rng);
            demo_records.truncate(self.config.sample_size);
            // Respect the model's context window (entity pairs are long).
            let budget = llm.context_window().saturating_sub(256);
            let mut used = unidm_text::count_tokens(&query_text) + 64;
            let mut fit = 0usize;
            for rec in &demo_records {
                let cost = unidm_text::count_tokens(&rec.render()) + 4;
                if used + cost > budget {
                    break;
                }
                used += cost;
                fit += 1;
            }
            demo_records.truncate(fit.max(1));
            let prompt = unidm_llm::protocol::render_pri(
                unidm_llm::protocol::TaskKind::EntityResolution,
                &query_text,
                &demo_records,
            );
            let reply = llm.complete(&prompt)?;
            let mut scores = unidm_llm::protocol::parse_pri_response(&reply.text);
            scores.sort_by_key(|&(i, s)| (std::cmp::Reverse(s), i));
            let records = scores
                .into_iter()
                .take(self.config.top_k)
                .filter_map(|(i, _)| demo_records.get(i).cloned())
                .collect();
            Context {
                attrs: Vec::new(),
                records,
            }
        } else {
            let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0xE12);
            demo_records.shuffle(&mut rng);
            demo_records.truncate(self.config.top_k);
            Context {
                attrs: Vec::new(),
                records: demo_records,
            }
        };
        let context_text = parsing::parse_context(llm, &self.config, &context.records)?;
        let claim = Claim {
            task: unidm_llm::protocol::TaskKind::EntityResolution,
            context: context_text,
            query: claim_query_er(&nat(a), &nat(b)),
        };
        self.finish(llm, claim, Vec::new(), &context)
    }

    fn run_tableqa(
        &self,
        llm: &dyn LanguageModel,
        lake: &DataLake,
        table: &str,
        question: &str,
    ) -> Result<(String, Trace), UniDmError> {
        let table = lake.require(table)?;
        let attrs = meta_wise(
            llm,
            &self.config,
            unidm_llm::protocol::TaskKind::TableQa,
            question,
            table,
            "",
        )?;
        let (key, target) = match attrs.as_slice() {
            [] => {
                return Err(UniDmError::InvalidTask(
                    "no attributes selected for table QA".into(),
                ))
            }
            [only] => (only.clone(), only.clone()),
            [first, .., last] => (first.clone(), last.clone()),
        };
        let context = instance_wise(
            llm,
            &self.config,
            unidm_llm::protocol::TaskKind::TableQa,
            question,
            table,
            None,
            &attrs,
            &target,
            &key,
        )?;
        let context_text = parsing::parse_context(llm, &self.config, &context.records)?;
        let claim = Claim {
            task: unidm_llm::protocol::TaskKind::TableQa,
            context: context_text,
            query: question.to_string(),
        };
        self.finish(llm, claim, attrs, &context)
    }

    fn run_join(
        &self,
        llm: &dyn LanguageModel,
        left_name: &str,
        left_values: &[String],
        right_name: &str,
        right_values: &[String],
    ) -> Result<(String, Trace), UniDmError> {
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x7014);
        let sample = |vals: &[String], rng: &mut StdRng| -> Vec<String> {
            let mut v: Vec<String> = vals.to_vec();
            v.shuffle(rng);
            v.truncate(20);
            v
        };
        let left_sample = sample(left_values, &mut rng);
        let right_sample = sample(right_values, &mut rng);
        let context_text = format!(
            "Column \"{left_name}\" contains {}.\nColumn \"{right_name}\" contains {}.",
            left_sample.join("; "),
            right_sample.join("; "),
        );
        let claim = Claim {
            task: unidm_llm::protocol::TaskKind::JoinDiscovery,
            context: context_text,
            query: format!("{left_name} VERSUS {right_name}"),
        };
        self.finish(llm, claim, Vec::new(), &Context::default())
    }

    fn run_extraction(
        &self,
        llm: &dyn LanguageModel,
        document: &str,
        attr: &str,
    ) -> Result<(String, Trace), UniDmError> {
        let text = crate::html::strip_tags(document);
        let claim = Claim {
            task: unidm_llm::protocol::TaskKind::Extraction,
            context: text,
            query: attr.to_string(),
        };
        self.finish(llm, claim, Vec::new(), &Context::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unidm_llm::{LlmProfile, MockLlm};
    use unidm_synthdata::{imputation, tableqa};
    use unidm_world::World;

    fn setup() -> (World, MockLlm) {
        let world = World::generate(7);
        let llm = MockLlm::new(&world, LlmProfile::gpt4_turbo(), 1);
        (world, llm)
    }

    #[test]
    fn imputation_end_to_end() {
        let (world, llm) = setup();
        let ds = imputation::restaurant(&world, 3, 20);
        let lake: DataLake = [ds.table.clone()].into_iter().collect();
        let unidm = UniDm::new(&llm, PipelineConfig::paper_default());
        let mut correct = 0;
        for t in &ds.targets {
            let task = Task::imputation("restaurants", t.row, "city", "name");
            let out = unidm.run(&lake, &task).unwrap();
            if out.answer.to_lowercase() == t.truth.to_string().to_lowercase() {
                correct += 1;
            }
        }
        assert!(
            correct >= 15,
            "GPT-4-level pipeline should be strong: {correct}/20"
        );
    }

    #[test]
    fn trace_records_pipeline_steps() {
        let (world, llm) = setup();
        let ds = imputation::restaurant(&world, 3, 5);
        let lake: DataLake = [ds.table.clone()].into_iter().collect();
        let unidm = UniDm::new(&llm, PipelineConfig::paper_default());
        let out = unidm
            .run(
                &lake,
                &Task::imputation("restaurants", ds.targets[0].row, "city", "name"),
            )
            .unwrap();
        assert!(!out.trace.selected_attrs.is_empty());
        assert_eq!(out.trace.context_records.len(), 3);
        assert!(out.trace.target_prompt.contains("__"));
        assert!(out.usage.total() > 0);
    }

    #[test]
    fn transformation_end_to_end() {
        let (_, llm) = setup();
        let unidm = UniDm::new(&llm, PipelineConfig::paper_default());
        let task = Task::Transformation {
            examples: vec![
                ("20000101".into(), "2000-01-01".into()),
                ("19991231".into(), "1999-12-31".into()),
            ],
            input: "20210315".into(),
        };
        let out = unidm.run(&DataLake::new(), &task).unwrap();
        assert_eq!(out.answer, "2021-03-15");
    }

    #[test]
    fn tableqa_end_to_end() {
        let (world, llm) = setup();
        let ds = tableqa::medals(&world, 3, 8, 5);
        let lake: DataLake = [ds.table.clone()].into_iter().collect();
        let unidm = UniDm::new(&llm, PipelineConfig::paper_default());
        let mut correct = 0;
        for q in &ds.questions {
            let task = Task::TableQa {
                table: "medals".into(),
                question: q.question.clone(),
            };
            let out = unidm.run(&lake, &task).unwrap();
            if out.answer == q.answer.to_string() {
                correct += 1;
            }
        }
        assert!(correct >= 3, "tableqa correct {correct}/5");
    }

    #[test]
    fn join_discovery_end_to_end() {
        let (_, llm) = setup();
        let unidm = UniDm::new(&llm, PipelineConfig::paper_default());
        let task = Task::JoinDiscovery {
            left_name: "fifa_ranking.country_abrv".into(),
            left_values: vec!["GER".into(), "ITA".into(), "FRA".into(), "ESP".into()],
            right_name: "countries.ISO".into(),
            right_values: vec!["GER".into(), "ITA".into(), "FRA".into(), "IND".into()],
        };
        let out = unidm.run(&DataLake::new(), &task).unwrap();
        assert!(out.answer.starts_with("Yes"), "{}", out.answer);
    }

    #[test]
    fn extraction_end_to_end() {
        let (world, llm) = setup();
        let ds = unidm_synthdata::extraction::nba_players(&world, 3);
        let unidm = UniDm::new(&llm, PipelineConfig::paper_default());
        let doc = &ds.docs[0];
        let task = Task::Extraction {
            document: doc.text.clone(),
            attr: "height".into(),
        };
        let out = unidm.run(&DataLake::new(), &task).unwrap();
        // Height extraction should succeed on most documents; check shape.
        assert!(out.answer == ds.truth[0]["height"] || out.answer == "unknown");
    }

    #[test]
    fn unknown_table_is_invalid_task() {
        let (_, llm) = setup();
        let unidm = UniDm::new(&llm, PipelineConfig::paper_default());
        let err = unidm
            .run(&DataLake::new(), &Task::imputation("nope", 0, "a", "b"))
            .unwrap_err();
        assert!(matches!(err, UniDmError::Table(_)));
    }
}
