//! UniDM: a unified framework for data manipulation with large language
//! models (MLSys 2024 reproduction).
//!
//! UniDM formalizes a data-manipulation task `T` over a data lake `D` as a
//! function `Y = F_T(R, S, D)` and solves *every* such task with one
//! three-step, LLM-driven pipeline (paper §4, Algorithm 1):
//!
//! 1. **Automatic context retrieval** ([`retrieval`]) — prompt `p_rm` picks
//!    helpful attributes (meta-wise), prompt `p_ri` scores sampled records
//!    0–3 (instance-wise), and the top-k projected records become the
//!    tabular context `C`.
//! 2. **Context data parsing** ([`parsing`]) — `serialize()` produces
//!    `attr: value` text, prompt `p_dp` rewrites it into fluent sentences
//!    `C'`.
//! 3. **Target prompt construction** ([`prompting`]) — prompt `p_cq`
//!    rewrites the claim `(T, C', Q)` into a cloze question, which the LLM
//!    completes to produce `Y`.
//!
//! Each step can be disabled through [`PipelineConfig`], reproducing the
//! paper's ablations (Tables 8–10).
//!
//! # Batch execution
//!
//! One evaluation regenerates thousands of independent pipeline runs, so
//! the crate ships a parallel batch engine ([`exec`]):
//!
//! * [`BatchRunner`] fans a `Vec<Task>` out across a scoped worker pool
//!   sharing one `&dyn LanguageModel` (the trait requires `Send + Sync`).
//!   Results return in task order and are bit-for-bit identical to a
//!   serial loop — including per-run [`RunOutput`] usage, which is metered
//!   locally per run (via [`unidm_llm::UsageMeter`]) rather than diffed
//!   from the model's global counter.
//! * [`PromptCache`] memoizes prompt → completion pairs behind the same
//!   `LanguageModel` trait. Tasks over the same table repeat most of their
//!   retrieval (`p_rm`, `p_ri`) and parsing (`p_dp`) prompts, so layering
//!   the cache under a batch deduplicates those calls; [`CacheStats`]
//!   reports hits, misses, evictions and tokens saved — per shard and in
//!   aggregate.
//! * [`canon`] canonicalizes prompts into cache keys ([`PromptKey`]):
//!   whitespace normalization, a table-level-stem / per-row-suffix split,
//!   and (at [`CanonLevel::TableStem`]) generalization of per-row
//!   retrieval queries, which lifts imputation-workload hit rates from ~2%
//!   to ≥20%; [`CanonLevel::Semantic`] additionally folds `p_dp` record
//!   blocks that differ only in row order and reorderings of `p_ri`
//!   instance lists. The cache is sharded across independently locked
//!   maps keyed by [`PromptKey::hash64`].
//! * [`store`] is the disk tier beneath the in-memory shards: one merged,
//!   versioned, append-only `UDMCACHE1` segment ([`CacheStore`]) shared by
//!   every scenario of a model, with TinyLFU admission control (so a table
//!   scan cannot flush the hot set), compaction and max-age eviction.
//!   Attach it with [`PromptCache::with_store`]; misses probe the disk
//!   tier before reaching the model, so a warm replay — even into a cold
//!   process — uses zero model calls. The legacy per-scenario v1 text
//!   snapshots ([`PromptCache::save_to`] / [`PromptCache::load_from`])
//!   remain readable and migrate via [`CacheStore::import_v1`].
//!
//! * [`backend`] is the resilient client layer beneath the cache:
//!   bounded-concurrency dispatch, token-bucket rate limiting,
//!   exponential-backoff retry with seeded jitter, a circuit breaker and
//!   per-call deadlines over any `LanguageModel` — all on a virtual clock,
//!   and testable offline against the seeded fault injector
//!   [`unidm_llm::SimBackend`]. Cache hits never reach the backend, so
//!   they consume zero rate-limit budget; faulty runs return answers
//!   bit-identical to fault-free ones.
//! * [`route`] spreads traffic over a fleet: [`RoutedBackend`] routes
//!   each call to one of N weighted endpoints — per-endpoint circuit
//!   breakers, latency sketches and AIMD rate adaptation driven by
//!   observed 429s — and [`CascadeBackend`] sends every prompt to a cheap
//!   model first, escalating to the large model only when the answer is
//!   unparseable or below a confidence gate. Both report exact
//!   [`RouterStats`] and keep answers byte-identical to a direct call.
//!
//! The eval harness (`unidm-eval`) drives every per-table accuracy loop
//! through this engine (opt into caching with
//! `unidm_eval::CacheConfig`, into the backend with
//! `ExperimentConfig::backend`), and `cargo run -p unidm-bench --bin
//! throughput` measures the serial / batched / cold-cache / warm-cache
//! regimes against each other (plus a faulty-backend regime under
//! `--faults`).
//!
//! # Quickstart
//!
//! ```
//! use unidm::{PipelineConfig, Task, UniDm};
//! use unidm_llm::{LlmProfile, MockLlm};
//! use unidm_tablestore::{DataLake, Table, Value};
//! use unidm_world::World;
//!
//! # fn main() -> Result<(), unidm::UniDmError> {
//! let world = World::generate(42);
//! let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), 1);
//!
//! let mut cities = Table::builder("cities")
//!     .columns(["city", "country", "timezone"])
//!     .build();
//! cities.push_row(vec![
//!     Value::text("Florence"),
//!     Value::text("Italy"),
//!     Value::text("Central European Time"),
//! ]).unwrap();
//! cities.push_row(vec![
//!     Value::text("Copenhagen"),
//!     Value::text("Denmark"),
//!     Value::Null,
//! ]).unwrap();
//! let lake: DataLake = [cities].into_iter().collect();
//!
//! let unidm = UniDm::new(&llm, PipelineConfig::paper_default());
//! let task = Task::imputation("cities", 1, "timezone", "city");
//! let output = unidm.run(&lake, &task)?;
//! assert_eq!(output.answer, "Central European Time");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod canon;
mod config;
pub mod dispatch;
mod error;
pub mod exec;
pub mod html;
pub mod parsing;
pub mod pipeline;
pub mod prompting;
pub mod retrieval;
pub mod route;
pub mod serve;
pub mod store;
mod task;

pub use backend::{
    AttachedBackend, BackendConfig, BackendStats, BreakerPolicy, LatencySketch, RateLimit,
    ResilientBackend, RetryPolicy,
};
pub use canon::{CanonLevel, CanonicalPrompt, PromptKey, ReplayFold};
pub use config::PipelineConfig;
pub use dispatch::{DispatchRegistration, Dispatcher, HedgePolicy};
pub use error::UniDmError;
pub use exec::{
    BatchReport, BatchRunner, CacheStats, PromptCache, SnapshotError, StreamReport,
    DEFAULT_PARTITION_TASKS,
};
pub use pipeline::{RunOutput, Trace, UniDm};
pub use route::{
    AimdPolicy, CascadeBackend, CascadePolicy, EndpointConfig, EndpointStats, RoutePlan,
    RoutedBackend, RouterStats,
};
pub use serve::{ArrivalProcess, ServeConfig, ServeReport, ServeSim, TenantReport, TenantSpec};
pub use store::{CacheStore, StoreConfig, StoreError, StoreStats};
pub use task::Task;
