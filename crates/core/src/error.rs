//! Error type for UniDM pipeline runs.

use std::error::Error;
use std::fmt;

use unidm_llm::LlmError;
use unidm_tablestore::TableError;

/// Errors a pipeline run can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum UniDmError {
    /// The language model rejected a prompt.
    Llm(LlmError),
    /// A table or attribute reference was invalid.
    Table(TableError),
    /// The task specification was inconsistent with the data lake.
    InvalidTask(String),
}

impl fmt::Display for UniDmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UniDmError::Llm(e) => write!(f, "language model error: {e}"),
            UniDmError::Table(e) => write!(f, "table error: {e}"),
            UniDmError::InvalidTask(msg) => write!(f, "invalid task: {msg}"),
        }
    }
}

impl Error for UniDmError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            UniDmError::Llm(e) => Some(e),
            UniDmError::Table(e) => Some(e),
            UniDmError::InvalidTask(_) => None,
        }
    }
}

impl From<LlmError> for UniDmError {
    fn from(e: LlmError) -> Self {
        UniDmError::Llm(e)
    }
}

impl From<TableError> for UniDmError {
    fn from(e: TableError) -> Self {
        UniDmError::Table(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = UniDmError::from(LlmError::EmptyPrompt);
        assert!(e.to_string().contains("language model"));
        assert!(Error::source(&e).is_some());
        let e = UniDmError::InvalidTask("row out of range".into());
        assert!(Error::source(&e).is_none());
    }

    #[test]
    fn send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<UniDmError>();
    }
}
