//! Step 2 — context data parsing (paper §4.3).
//!
//! `serialize()` losslessly flattens the tabular context into `attr: value`
//! pairs; when parsing is enabled, prompt `p_dp` asks the LLM to rewrite
//! the pairs as fluent sentences `C'`.

use unidm_llm::protocol::{render_pdp, SerializedRecord};
use unidm_llm::LanguageModel;

use crate::{PipelineConfig, UniDmError};

/// Serializes records to the pair text `V` (one record per line).
pub fn serialize(records: &[SerializedRecord]) -> String {
    records
        .iter()
        .map(SerializedRecord::render)
        .filter(|l| !l.is_empty())
        .collect::<Vec<_>>()
        .join("\n")
}

/// Produces the context text: `C'` via `p_dp` when parsing is enabled, the
/// raw serialization `V` otherwise.
///
/// # Errors
///
/// Propagates LLM failures.
pub fn parse_context(
    llm: &dyn LanguageModel,
    config: &PipelineConfig,
    records: &[SerializedRecord],
) -> Result<String, UniDmError> {
    if records.is_empty() {
        return Ok(String::new());
    }
    if !config.context_parsing {
        return Ok(serialize(records));
    }
    let prompt = render_pdp(records);
    let reply = llm.complete(&prompt)?;
    Ok(reply.text.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use unidm_llm::{LlmProfile, MockLlm};
    use unidm_world::World;

    fn records() -> Vec<SerializedRecord> {
        vec![
            SerializedRecord::new(vec![
                ("city".into(), "Florence".into()),
                ("country".into(), "Italy".into()),
            ]),
            SerializedRecord::new(vec![
                ("city".into(), "Alicante".into()),
                ("country".into(), "Spain".into()),
            ]),
        ]
    }

    fn llm() -> MockLlm {
        MockLlm::new(&World::generate(7), LlmProfile::gpt4_turbo(), 1)
    }

    #[test]
    fn serialize_joins_lines() {
        let v = serialize(&records());
        assert_eq!(v.lines().count(), 2);
        assert!(v.contains("city: Florence; country: Italy"));
    }

    #[test]
    fn parsing_enabled_yields_sentences() {
        let c = parse_context(&llm(), &PipelineConfig::paper_default(), &records()).unwrap();
        assert!(c.contains("Florence belongs to the country Italy"), "{c}");
    }

    #[test]
    fn parsing_disabled_yields_pairs() {
        let cfg = PipelineConfig {
            context_parsing: false,
            ..PipelineConfig::paper_default()
        };
        let c = parse_context(&llm(), &cfg, &records()).unwrap();
        assert!(c.starts_with("city: Florence"));
    }

    #[test]
    fn empty_records_empty_context() {
        let c = parse_context(&llm(), &PipelineConfig::paper_default(), &[]).unwrap();
        assert!(c.is_empty());
    }
}
