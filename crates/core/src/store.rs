//! Tiered prompt-cache store: one merged, versioned, append-only disk
//! segment backing every [`crate::PromptCache`] — with TinyLFU admission
//! control so a table scan cannot flush the hot working set.
//!
//! The official UniDM repo persists every completion in a single sqlite
//! cache; our reproduction historically scattered one text snapshot per
//! eval scenario. [`CacheStore`] replaces those per-scenario
//! `.promptcache` files with a single `UDMCACHE1` segment shared by all
//! scenarios of one model:
//!
//! ```text
//! lookup ──▶ tier 0: sharded in-memory PromptCache (zero-alloc warm hit)
//!               │ miss
//!               ▼
//!            tier 1: CacheStore index probe ──▶ paged frame read (hit:
//!               │ miss                           0 model calls)
//!               ▼
//!            model call ──▶ TinyLFU admission ──▶ append frame | reject
//! ```
//!
//! # File format (`UDMCACHE1`)
//!
//! The layout reuses the `tablestore::segment` writer/reader idiom:
//! little-endian primitives, length-prefixed strings, a magic/version
//! header — but record-framed instead of directory-indexed, because the
//! store is append-only:
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────┐
//! │ magic "UDMCACHE" · u32 version (1) · str model               │
//! │ frame 0 │ frame 1 │ ...                                      │
//! └──────────────────────────────────────────────────────────────┘
//! frame := u32 payload_len · payload · u64 fnv1a(payload)
//! payload := u64 generation · str canonical prompt · str completion
//!            · u32 prompt_tokens · u32 completion_tokens
//! ```
//!
//! Opening a store scans every frame once to build an in-memory index
//! (canonical prompt → file offset); afterwards a disk hit is one seek +
//! one bounded read through a single handle — paged access without
//! holding completions resident. A truncated or garbled tail, a wrong
//! version, or a wrong model name fails the open with a clean
//! [`StoreError`] and **no mutation of the file**, so callers can fall
//! back cold exactly like the v1 snapshot path did.
//!
//! # Admission control (TinyLFU)
//!
//! Appends are gated by a TinyLFU-style filter: a **doorkeeper** bloom
//! filter in front of a **4-bit count-min sketch**, integer-only, seeded,
//! and fully deterministic. While the store is below capacity every
//! completion is admitted (a paper-scale workload persists wholesale, so
//! a warm replay needs zero model calls). At capacity, a candidate must
//! show evidence of a *prior* access (estimated frequency ≥ 3 — more
//! than its own probe-plus-offer can contribute, even through a
//! doorkeeper collision) to displace the oldest resident entry — so the
//! 10^5 one-touch prompts of a sequential scan are all rejected and the
//! hot set stays resident. Sketch counters halve periodically (aging),
//! keeping estimates fresh without floats or wall-clock time.
//!
//! # Compaction and max-age
//!
//! Displaced and expired entries stay physically in the file (append-only
//! writes are what keep the hot path one `write` call) until
//! [`CacheStore::compact`] rewrites live frames — sorted by canonical
//! prompt, so the compacted file is deterministic for a deterministic
//! history. Entries untouched for more than `max_age` generations (one
//! generation per open) are dropped at open and at compaction.

use std::collections::{HashMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use unidm_llm::{Completion, Usage};

/// Leading magic of every `UDMCACHE1` store file.
pub const STORE_MAGIC: &[u8; 8] = b"UDMCACHE";
/// Current store format version (the `1` of `UDMCACHE1`).
pub const STORE_VERSION: u32 = 1;

/// First line of the legacy v1 text snapshots [`CacheStore::import_v1`]
/// migrates (deprecated; kept readable for one-shot conversion).
pub const V1_SNAPSHOT_HEADER: &str = "unidm-prompt-cache v1";

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

// ── Little-endian primitives (the `tablestore::segment` idiom) ──────────

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// A cursor over a decoded byte buffer.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| StoreError::format("truncated store payload"))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, StoreError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| StoreError::format("invalid utf-8 in store"))
    }
}

/// Why a [`CacheStore`] could not be opened, read, or written.
#[derive(Debug)]
pub enum StoreError {
    /// Reading or writing the store file failed.
    Io(std::io::Error),
    /// The file is not a well-formed `UDMCACHE1` document (bad magic,
    /// truncated frame, checksum mismatch, garbled payload).
    Format(String),
    /// The file carries an unsupported format version.
    Version {
        /// The version recorded in the file.
        found: u32,
    },
    /// The store was written over a different model, so its completions
    /// would be wrong for this one.
    ModelMismatch {
        /// The model this store was opened for.
        expected: String,
        /// The model recorded in the file.
        found: String,
    },
}

impl StoreError {
    fn format(msg: impl Into<String>) -> StoreError {
        StoreError::Format(msg.into())
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Format(msg) => write!(f, "store format error: {msg}"),
            StoreError::Version { found } => write!(
                f,
                "store version {found} is not supported (expected {STORE_VERSION})"
            ),
            StoreError::ModelMismatch { expected, found } => write!(
                f,
                "store model mismatch: opened for {expected:?} but file was written over {found:?}"
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Exact counters of one [`CacheStore`] (or one tier's view of it).
///
/// Every field is a plain sum, so [`StoreStats::merge`] is exact and
/// commutative — the same contract as `BackendStats::merge` and
/// [`crate::CacheStats::merge`]: folding per-tier (or per-run) snapshots
/// in any order yields the same aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Lookups answered from the disk tier (no model call).
    pub hits: usize,
    /// Lookups the disk tier could not answer.
    pub misses: usize,
    /// Completions the admission filter accepted and appended.
    pub admitted: usize,
    /// Completions the admission filter rejected (one-touch candidates at
    /// capacity — the scan-resistance counter).
    pub rejected: usize,
    /// Resident entries displaced by an admitted candidate.
    pub evicted: usize,
    /// Entries dropped because their age exceeded the max-age policy.
    pub expired: usize,
    /// Compaction passes performed.
    pub compactions: usize,
    /// Dead frames dropped by compaction (displaced, expired, or
    /// superseded duplicates).
    pub compacted_frames: usize,
}

impl StoreStats {
    /// Disk-tier hit rate in `[0, 1]` (zero when nothing was probed).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Adds another stats snapshot into this one. Pure field-wise sums:
    /// exact and commutative, so tier and run aggregates are
    /// order-independent.
    pub fn merge(&mut self, other: StoreStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.admitted += other.admitted;
        self.rejected += other.rejected;
        self.evicted += other.evicted;
        self.expired += other.expired;
        self.compactions += other.compactions;
        self.compacted_frames += other.compacted_frames;
    }
}

/// Tuning knobs of a [`CacheStore`] (see [`CacheStore::open`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Maximum live entries; beyond it the admission filter gates every
    /// append. `usize::MAX` never gates (and never evicts).
    pub max_entries: usize,
    /// Entries untouched for more than this many generations (one
    /// generation per [`CacheStore::open`]) are dropped at open and at
    /// compaction. `u64::MAX` disables the policy.
    pub max_age: u64,
    /// Seed of the admission filter's hash family. Fixed seed → fully
    /// deterministic admission decisions for a deterministic history.
    pub seed: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            max_entries: usize::MAX,
            max_age: u64::MAX,
            seed: 0x5eed_cafe,
        }
    }
}

impl StoreConfig {
    /// Bounds the store to `max_entries` live completions.
    pub fn with_max_entries(mut self, max_entries: usize) -> Self {
        self.max_entries = max_entries.max(1);
        self
    }

    /// Sets the max-age policy, in generations (opens).
    pub fn with_max_age(mut self, max_age: u64) -> Self {
        self.max_age = max_age;
        self
    }

    /// Sets the admission filter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

// ── TinyLFU admission filter ────────────────────────────────────────────

/// Sketch width in 4-bit counters. Power of two so indexing is a mask;
/// 64Ki counters = 32 KiB — enough resolution for ~10^5-key scans.
const SKETCH_COUNTERS: usize = 1 << 16;
/// Doorkeeper bits (one u64 word per 64 bits). Sized with the sketch.
const DOORKEEPER_BITS: usize = 1 << 16;
/// Upper bound on touches between aging passes (halve every counter,
/// reset the doorkeeper). A capacity-bounded filter ages every
/// `10 × capacity` touches instead — the classic TinyLFU sample window —
/// so a long one-touch scan cannot saturate the doorkeeper into false
/// "frequent" estimates. Deterministic: a pure function of touch count.
const AGING_PERIOD: u64 = 10 * SKETCH_COUNTERS as u64;
/// 4-bit counters saturate here.
const COUNTER_MAX: u8 = 15;

/// TinyLFU frequency filter: doorkeeper bloom filter + 4-bit count-min
/// sketch. Integer-only, seeded, deterministic — admission decisions are
/// a pure function of the key-touch history.
struct TinyLfu {
    /// Packed 4-bit counters, two per byte.
    sketch: Vec<u8>,
    doorkeeper: Vec<u64>,
    seed: u64,
    touches: u64,
    /// Touches per aging pass: `10 × capacity` for a bounded store
    /// (clamped into `[64, AGING_PERIOD]`), `AGING_PERIOD` otherwise.
    sample_window: u64,
}

impl TinyLfu {
    fn new(seed: u64, max_entries: usize) -> TinyLfu {
        let sample_window = if max_entries == usize::MAX {
            AGING_PERIOD
        } else {
            (max_entries as u64)
                .saturating_mul(10)
                .clamp(64, AGING_PERIOD)
        };
        TinyLfu {
            sketch: vec![0u8; SKETCH_COUNTERS / 2],
            doorkeeper: vec![0u64; DOORKEEPER_BITS / 64],
            seed,
            touches: 0,
            sample_window,
        }
    }

    /// The i-th member of the seeded hash family for `hash`.
    #[inline]
    fn index(&self, hash: u64, i: u64) -> usize {
        // One multiply-xor round per family member over the stable FNV
        // key hash; the seed decorrelates the family from the shard mask.
        let mixed = (hash ^ self.seed.wrapping_mul(i.wrapping_add(1)))
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .rotate_left(31)
            .wrapping_mul(FNV_PRIME);
        (mixed as usize) & (SKETCH_COUNTERS - 1)
    }

    #[inline]
    fn counter(&self, slot: usize) -> u8 {
        let byte = self.sketch[slot / 2];
        if slot.is_multiple_of(2) {
            byte & 0x0f
        } else {
            byte >> 4
        }
    }

    #[inline]
    fn bump_counter(&mut self, slot: usize) {
        let byte = &mut self.sketch[slot / 2];
        if slot.is_multiple_of(2) {
            let lo = *byte & 0x0f;
            if lo < COUNTER_MAX {
                *byte = (*byte & 0xf0) | (lo + 1);
            }
        } else {
            let hi = *byte >> 4;
            if hi < COUNTER_MAX {
                *byte = (*byte & 0x0f) | ((hi + 1) << 4);
            }
        }
    }

    /// Records one sighting of `hash`.
    fn touch(&mut self, hash: u64) {
        let door = self.index(hash, 0) % DOORKEEPER_BITS;
        let (word, bit) = (door / 64, door % 64);
        if self.doorkeeper[word] & (1 << bit) == 0 {
            // First sighting since the last aging pass: the doorkeeper
            // absorbs it, keeping one-touch keys out of the sketch.
            self.doorkeeper[word] |= 1 << bit;
        } else {
            for i in 1..=3 {
                let slot = self.index(hash, i);
                self.bump_counter(slot);
            }
        }
        self.touches += 1;
        if self.touches.is_multiple_of(self.sample_window) {
            self.age();
        }
    }

    /// Estimated frequency of `hash`: doorkeeper sighting counts 1, plus
    /// the count-min over the sketch family.
    fn estimate(&self, hash: u64) -> u32 {
        let door = self.index(hash, 0) % DOORKEEPER_BITS;
        let seen = u32::from(self.doorkeeper[door / 64] & (1 << (door % 64)) != 0);
        let mut min = u32::from(COUNTER_MAX);
        for i in 1..=3 {
            min = min.min(u32::from(self.counter(self.index(hash, i))));
        }
        seen + min
    }

    /// Aging: halve every counter and reset the doorkeeper, so stale
    /// popularity decays and the filter tracks the current mix.
    fn age(&mut self) {
        for byte in &mut self.sketch {
            *byte = (*byte >> 1) & 0x77;
        }
        for word in &mut self.doorkeeper {
            *word = 0;
        }
    }
}

/// Where one live entry sits in the file.
#[derive(Debug, Clone, Copy)]
struct IndexEntry {
    /// Offset of the frame's payload-length prefix.
    offset: u64,
    /// Whole frame length (prefix + payload + checksum), for the bounded
    /// read.
    frame_len: usize,
    /// Generation of the last touch (admission or disk hit); compaction
    /// persists it.
    generation: u64,
}

struct StoreState {
    file: File,
    index: HashMap<Box<str>, IndexEntry>,
    /// Admission order of resident keys: the deterministic FIFO victim
    /// queue. Displaced keys are removed lazily (the index is
    /// authoritative).
    queue: VecDeque<Box<str>>,
    filter: TinyLfu,
    /// Frames physically in the file, live or dead — compaction trigger.
    frames: usize,
    stats: StoreStats,
}

/// A tiered prompt-cache store handle: cheap to clone, safe to share —
/// every clone talks to the same file, index, and admission filter.
///
/// See the [module docs](self) for the format and policies. The intended
/// composition is [`crate::PromptCache::with_store`]: the in-memory cache
/// stays tier 0 (zero-allocation warm hits, single-flight), and only its
/// misses probe the disk tier before reaching the model.
///
/// # Examples
///
/// ```
/// use unidm::store::{CacheStore, StoreConfig};
/// use unidm_llm::{Completion, Usage};
/// use std::sync::Arc;
///
/// let dir = std::env::temp_dir().join(format!("udm-store-doc-{}", std::process::id()));
/// std::fs::create_dir_all(&dir).unwrap();
/// let path = dir.join("cache.udmstore");
/// let store = CacheStore::open(&path, "mock-model", StoreConfig::default()).unwrap();
/// let completion = Arc::new(Completion { text: "Rome".into(), usage: Usage::default() });
/// store.offer("capital of Italy?", &completion);
/// assert_eq!(store.get("capital of Italy?").unwrap().text, "Rome");
///
/// // Reopening the same file serves the entry without any model.
/// drop(store);
/// let reopened = CacheStore::open(&path, "mock-model", StoreConfig::default()).unwrap();
/// assert_eq!(reopened.get("capital of Italy?").unwrap().text, "Rome");
/// # let _ = std::fs::remove_dir_all(&dir);
/// ```
#[derive(Clone)]
pub struct CacheStore {
    inner: Arc<StoreInner>,
}

struct StoreInner {
    path: PathBuf,
    model: String,
    config: StoreConfig,
    generation: u64,
    state: Mutex<StoreState>,
}

impl std::fmt::Debug for CacheStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheStore")
            .field("path", &self.inner.path)
            .field("model", &self.inner.model)
            .field("generation", &self.inner.generation)
            .field("len", &self.len())
            .field("stats", &self.stats())
            .finish()
    }
}

/// Encodes one frame (length prefix + payload + checksum).
fn encode_frame(generation: u64, prompt: &str, completion: &Completion) -> Vec<u8> {
    let mut payload = Vec::with_capacity(prompt.len() + completion.text.len() + 32);
    put_u64(&mut payload, generation);
    put_str(&mut payload, prompt);
    put_str(&mut payload, &completion.text);
    put_u32(&mut payload, completion.usage.prompt_tokens as u32);
    put_u32(&mut payload, completion.usage.completion_tokens as u32);
    let checksum = fnv1a(&payload);
    let mut frame = Vec::with_capacity(payload.len() + 12);
    put_u32(&mut frame, payload.len() as u32);
    frame.extend_from_slice(&payload);
    put_u64(&mut frame, checksum);
    frame
}

/// Decodes one frame payload (already checksum-verified).
fn decode_payload(payload: &[u8]) -> Result<(u64, String, Completion), StoreError> {
    let mut cur = Cursor::new(payload);
    let generation = cur.u64()?;
    let prompt = cur.str()?;
    let text = cur.str()?;
    let prompt_tokens = cur.u32()? as usize;
    let completion_tokens = cur.u32()? as usize;
    if cur.pos != payload.len() {
        return Err(StoreError::format("trailing bytes in store frame"));
    }
    Ok((
        generation,
        prompt,
        Completion {
            text,
            usage: Usage {
                prompt_tokens,
                completion_tokens,
            },
        },
    ))
}

fn encode_header(model: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + model.len());
    out.extend_from_slice(STORE_MAGIC);
    put_u32(&mut out, STORE_VERSION);
    put_str(&mut out, model);
    out
}

impl CacheStore {
    /// Opens (or creates) the store at `path` for `model`.
    ///
    /// A fresh path is initialized with the `UDMCACHE1` header. An
    /// existing file is validated — magic, version, model name, then
    /// every frame's length and checksum — and scanned once to build the
    /// in-memory index; entries whose age exceeds
    /// [`StoreConfig::max_age`] are dropped from the index (and reclaimed
    /// by the next compaction). The admission filter is re-warmed from
    /// the live entries in deterministic (file) order, so a reopened
    /// store makes the same decisions a never-closed one would.
    ///
    /// # Errors
    ///
    /// [`StoreError::Format`] for truncated/garbled files,
    /// [`StoreError::Version`] and [`StoreError::ModelMismatch`] for
    /// mismatched headers, [`StoreError::Io`] for filesystem failures. On
    /// error the file is **not modified** — a caller can fall back to a
    /// cold cache and leave the evidence intact.
    pub fn open(
        path: impl AsRef<Path>,
        model: &str,
        config: StoreConfig,
    ) -> Result<CacheStore, StoreError> {
        let path = path.as_ref().to_path_buf();
        let exists = path.exists();
        if !exists {
            if let Some(parent) = path.parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent)?;
                }
            }
            let mut file = OpenOptions::new()
                .create_new(true)
                .read(true)
                .write(true)
                .open(&path)?;
            file.write_all(&encode_header(model))?;
            file.flush()?;
            let state = StoreState {
                file,
                index: HashMap::new(),
                queue: VecDeque::new(),
                filter: TinyLfu::new(config.seed, config.max_entries),
                frames: 0,
                stats: StoreStats::default(),
            };
            return Ok(CacheStore {
                inner: Arc::new(StoreInner {
                    path,
                    model: model.to_string(),
                    config,
                    generation: 1,
                    state: Mutex::new(state),
                }),
            });
        }

        // Validate and index the existing file without mutating it.
        let bytes = std::fs::read(&path)?;
        let scan = scan_store(&bytes, model)?;
        let generation = scan.max_generation + 1;
        let mut index = HashMap::new();
        let mut queue = VecDeque::new();
        let mut filter = TinyLfu::new(config.seed, config.max_entries);
        let mut expired = 0usize;
        for (prompt, entry) in scan.entries {
            // Age = generations since last touch; `max_age` generations
            // of silence expire an entry at open.
            if config.max_age != u64::MAX
                && generation.saturating_sub(entry.generation) > config.max_age
            {
                expired += 1;
                continue;
            }
            filter.touch(fnv1a(prompt.as_bytes()));
            if index
                .insert(prompt.clone().into_boxed_str(), entry)
                .is_none()
            {
                queue.push_back(prompt.into_boxed_str());
            }
        }
        let file = OpenOptions::new().read(true).append(true).open(&path)?;
        let stats = StoreStats {
            expired,
            ..StoreStats::default()
        };
        let state = StoreState {
            file,
            index,
            queue,
            filter,
            frames: scan.frames,
            stats,
        };
        Ok(CacheStore {
            inner: Arc::new(StoreInner {
                path,
                model: model.to_string(),
                config,
                generation,
                state: Mutex::new(state),
            }),
        })
    }

    fn lock(&self) -> MutexGuard<'_, StoreState> {
        self.inner
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// The file this store persists to.
    pub fn path(&self) -> &Path {
        &self.inner.path
    }

    /// The model name this store is guarded by.
    pub fn model(&self) -> &str {
        &self.inner.model
    }

    /// The session generation of this open (1 for a fresh store).
    pub fn generation(&self) -> u64 {
        self.inner.generation
    }

    /// Live entries in the index.
    pub fn len(&self) -> usize {
        self.lock().index.len()
    }

    /// Whether the store holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the store's exact counters.
    pub fn stats(&self) -> StoreStats {
        self.lock().stats
    }

    /// Probes the disk tier for `prompt` (the canonical text): a hit
    /// seeks to the indexed frame, reads exactly that frame, verifies its
    /// checksum, and returns the completion — no model call, no resident
    /// payload cache. The entry's generation is refreshed, so live use
    /// keeps it out of max-age reach.
    ///
    /// Corrupt frames discovered at read time (the file changed under
    /// us) drop the entry and miss, never panic.
    pub fn get(&self, prompt: &str) -> Option<Arc<Completion>> {
        let mut state = self.lock();
        let Some(mut entry) = state.index.get(prompt).copied() else {
            state.stats.misses += 1;
            // Missed probes still teach the filter: the second sighting
            // of a key is what earns it admission at capacity.
            state.filter.touch(fnv1a(prompt.as_bytes()));
            return None;
        };
        match read_frame(&mut state.file, entry.offset, entry.frame_len) {
            Ok((_, stored_prompt, completion)) if stored_prompt == prompt => {
                state.stats.hits += 1;
                entry.generation = self.inner.generation;
                state.index.insert(prompt.into(), entry);
                state.filter.touch(fnv1a(prompt.as_bytes()));
                Some(Arc::new(completion))
            }
            _ => {
                // The indexed frame no longer matches (external
                // truncation/rewrite): drop it and miss cleanly.
                state.index.remove(prompt);
                state.stats.misses += 1;
                None
            }
        }
    }

    /// Offers a fresh completion for admission, returning whether it was
    /// appended.
    ///
    /// Below [`StoreConfig::max_entries`] every offer is admitted. At
    /// capacity the TinyLFU filter gates: the candidate must have an
    /// estimated frequency ≥ 3 — evidence of a *prior* access, beyond
    /// what the current access alone can contribute (its probe sets the
    /// doorkeeper, and on a doorkeeper collision that same probe bumps
    /// the sketch once, for an estimate of at most 2). A genuinely
    /// re-accessed key reaches 3 on its second access; the one-touch
    /// keys of a sequential scan cannot self-admit even when they
    /// collide in the doorkeeper, which is what keeps the hot set
    /// resident. The displaced victim is the oldest resident entry
    /// (FIFO, deterministic).
    ///
    /// Append failures are recorded as rejections (the store is an
    /// optimization, never a correctness dependency).
    pub fn offer(&self, prompt: &str, completion: &Arc<Completion>) -> bool {
        let mut state = self.lock();
        let hash = fnv1a(prompt.as_bytes());
        if state.index.contains_key(prompt) {
            // Already resident (a racing co-leader or a re-admission):
            // refresh the touch, keep the existing frame.
            state.filter.touch(hash);
            return false;
        }
        let at_capacity = state.index.len() >= self.inner.config.max_entries;
        if at_capacity {
            let frequent = state.filter.estimate(hash) >= 3;
            state.filter.touch(hash);
            if !frequent {
                state.stats.rejected += 1;
                return false;
            }
            // Deterministic FIFO victim: the oldest still-live admission.
            // (Stale queue entries — already displaced — are skipped.)
            while let Some(victim) = state.queue.pop_front() {
                if state.index.remove(&victim).is_some() {
                    state.stats.evicted += 1;
                    break;
                }
            }
        } else {
            state.filter.touch(hash);
        }
        match self.append_frame(&mut state, prompt, completion) {
            Ok(()) => {
                state.stats.admitted += 1;
                true
            }
            Err(_) => {
                state.stats.rejected += 1;
                false
            }
        }
    }

    fn append_frame(
        &self,
        state: &mut StoreState,
        prompt: &str,
        completion: &Arc<Completion>,
    ) -> Result<(), StoreError> {
        let frame = encode_frame(self.inner.generation, prompt, completion);
        let offset = state.file.seek(SeekFrom::End(0))?;
        state.file.write_all(&frame)?;
        state.file.flush()?;
        state.frames += 1;
        state.index.insert(
            prompt.into(),
            IndexEntry {
                offset,
                frame_len: frame.len(),
                generation: self.inner.generation,
            },
        );
        state.queue.push_back(prompt.into());
        Ok(())
    }

    /// Rewrites the file with only the live frames, sorted by canonical
    /// prompt — deterministic for a deterministic history — and refreshed
    /// generations from the index. Returns how many dead frames were
    /// reclaimed.
    ///
    /// The rewrite goes through a sibling temp file and an atomic rename,
    /// so a crash mid-compaction leaves either the old file or the new
    /// one, never a torn store.
    pub fn compact(&self) -> Result<usize, StoreError> {
        let mut state = self.lock();
        let mut live: Vec<(Box<str>, IndexEntry)> =
            state.index.iter().map(|(k, v)| (k.clone(), *v)).collect();
        live.sort_by(|a, b| a.0.cmp(&b.0));
        let dropped = state.frames - live.len();

        let mut out = encode_header(&self.inner.model);
        let mut new_index = HashMap::with_capacity(live.len());
        let mut new_queue = VecDeque::with_capacity(live.len());
        for (prompt, entry) in &live {
            let (_, stored_prompt, completion) =
                read_frame(&mut state.file, entry.offset, entry.frame_len)?;
            if stored_prompt.as_str() != prompt.as_ref() {
                return Err(StoreError::format("index out of sync during compaction"));
            }
            let frame = encode_frame(entry.generation, prompt, &completion);
            new_index.insert(
                prompt.clone(),
                IndexEntry {
                    offset: out.len() as u64,
                    frame_len: frame.len(),
                    generation: entry.generation,
                },
            );
            new_queue.push_back(prompt.clone());
            out.extend_from_slice(&frame);
        }

        let tmp = self.inner.path.with_extension("compact-tmp");
        std::fs::write(&tmp, &out)?;
        std::fs::rename(&tmp, &self.inner.path)?;
        state.file = OpenOptions::new()
            .read(true)
            .append(true)
            .open(&self.inner.path)?;
        state.frames = live.len();
        state.index = new_index;
        state.queue = new_queue;
        state.stats.compactions += 1;
        state.stats.compacted_frames += dropped;
        Ok(dropped)
    }

    /// Dead frames currently in the file (displaced or superseded) — the
    /// compaction trigger a caller can poll.
    pub fn dead_frames(&self) -> usize {
        let state = self.lock();
        state.frames - state.index.len()
    }

    /// The live canonical prompts, sorted (diagnostics and tests).
    pub fn canonical_prompts(&self) -> Vec<String> {
        let state = self.lock();
        let mut prompts: Vec<String> = state.index.keys().map(|k| k.to_string()).collect();
        prompts.sort();
        prompts
    }

    /// One-shot migration from the deprecated v1 text snapshot format
    /// (`unidm-prompt-cache v1`, the per-scenario `.promptcache` files):
    /// parses the whole document, validates its model guard against this
    /// store's, and admits every entry **bypassing the admission filter**
    /// — a migration must preserve warm-start behavior byte-for-byte, so
    /// nothing is allowed to gate it. Entries already resident are
    /// skipped (their first admission wins, matching v1 restore
    /// semantics). Returns how many entries were imported.
    ///
    /// # Errors
    ///
    /// [`StoreError::Format`] for malformed snapshots,
    /// [`StoreError::ModelMismatch`] when the snapshot was taken over a
    /// different model. Parsing completes before anything is appended, so
    /// a malformed document leaves the store untouched.
    pub fn import_v1(&self, snapshot: &str) -> Result<usize, StoreError> {
        let entries = parse_v1_snapshot(snapshot, &self.inner.model)?;
        let mut state = self.lock();
        let mut imported = 0usize;
        for (prompt, completion) in entries {
            if state.index.contains_key(prompt.as_str()) {
                continue;
            }
            let completion = Arc::new(completion);
            state.filter.touch(fnv1a(prompt.as_bytes()));
            self.append_frame(&mut state, &prompt, &completion)?;
            state.stats.admitted += 1;
            imported += 1;
        }
        Ok(imported)
    }
}

/// What scanning an existing store file yields.
struct StoreScan {
    /// Last-wins live entries, in file order of their winning frame.
    entries: Vec<(String, IndexEntry)>,
    /// Total frames physically present (live + superseded).
    frames: usize,
    max_generation: u64,
}

/// Validates `bytes` as a `UDMCACHE1` document for `model` and extracts
/// the live entry index. Pure — never touches the filesystem.
fn scan_store(bytes: &[u8], model: &str) -> Result<StoreScan, StoreError> {
    if bytes.len() < STORE_MAGIC.len() || &bytes[..STORE_MAGIC.len()] != STORE_MAGIC {
        return Err(StoreError::format("missing UDMCACHE magic"));
    }
    let mut cur = Cursor::new(bytes);
    cur.pos = STORE_MAGIC.len();
    let version = cur.u32()?;
    if version != STORE_VERSION {
        return Err(StoreError::Version { found: version });
    }
    let found = cur.str()?;
    if found != model {
        return Err(StoreError::ModelMismatch {
            expected: model.to_string(),
            found,
        });
    }
    let mut by_prompt: HashMap<String, usize> = HashMap::new();
    let mut entries: Vec<(String, IndexEntry)> = Vec::new();
    let mut frames = 0usize;
    let mut max_generation = 0u64;
    while cur.pos < bytes.len() {
        let offset = cur.pos as u64;
        let payload_len = cur.u32()? as usize;
        let payload = cur.take(payload_len)?;
        let checksum = cur.u64()?;
        if fnv1a(payload) != checksum {
            return Err(StoreError::format(format!(
                "checksum mismatch in frame at offset {offset}"
            )));
        }
        let (generation, prompt, _) = decode_payload(payload)?;
        frames += 1;
        max_generation = max_generation.max(generation);
        let entry = IndexEntry {
            offset,
            frame_len: 4 + payload_len + 8,
            generation,
        };
        // Last frame for a prompt wins (a re-admission after displacement
        // appends a fresh frame).
        match by_prompt.get(&prompt) {
            Some(&slot) => entries[slot].1 = entry,
            None => {
                by_prompt.insert(prompt.clone(), entries.len());
                entries.push((prompt, entry));
            }
        }
    }
    Ok(StoreScan {
        entries,
        frames,
        max_generation,
    })
}

/// Seeks to `offset` and reads exactly one frame, verifying length and
/// checksum.
fn read_frame(
    file: &mut File,
    offset: u64,
    frame_len: usize,
) -> Result<(u64, String, Completion), StoreError> {
    if frame_len < 12 {
        return Err(StoreError::format("frame too short"));
    }
    file.seek(SeekFrom::Start(offset))?;
    let mut frame = vec![0u8; frame_len];
    file.read_exact(&mut frame)?;
    let payload_len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
    if payload_len + 12 != frame_len {
        return Err(StoreError::format("frame length prefix mismatch"));
    }
    let payload = &frame[4..4 + payload_len];
    let checksum = u64::from_le_bytes(frame[4 + payload_len..].try_into().unwrap());
    if fnv1a(payload) != checksum {
        return Err(StoreError::format("checksum mismatch on frame read"));
    }
    decode_payload(payload)
}

/// Parses a legacy v1 text snapshot (the exact `unidm-prompt-cache v1`
/// line format), enforcing the model guard. Returns the entries in
/// document order.
fn parse_v1_snapshot(snapshot: &str, model: &str) -> Result<Vec<(String, Completion)>, StoreError> {
    let parse_err =
        |line: usize, message: &str| StoreError::format(format!("v1 line {line}: {message}"));
    let mut lines = snapshot.lines();
    let header = lines.next().ok_or_else(|| parse_err(1, "empty snapshot"))?;
    if header != V1_SNAPSHOT_HEADER {
        return Err(parse_err(1, "expected `unidm-prompt-cache v1` header"));
    }
    let model_line = lines
        .next()
        .ok_or_else(|| parse_err(2, "missing model line"))?;
    let found = model_line
        .strip_prefix("model ")
        .ok_or_else(|| parse_err(2, "expected `model <name>`"))?;
    if found != model {
        return Err(StoreError::ModelMismatch {
            expected: model.to_string(),
            found: found.to_string(),
        });
    }
    let count_line = lines
        .next()
        .ok_or_else(|| parse_err(3, "missing entries line"))?;
    let declared: usize = count_line
        .strip_prefix("entries ")
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| parse_err(3, "expected `entries <count>`"))?;
    let mut parsed = Vec::with_capacity(declared);
    for index in 0..declared {
        let entry_line = 4 + index * 3;
        let prompt = lines
            .next()
            .and_then(|l| l.strip_prefix("p "))
            .ok_or_else(|| parse_err(entry_line, "expected `p <prompt>`"))?;
        let text = lines
            .next()
            .and_then(|l| l.strip_prefix("c "))
            .ok_or_else(|| parse_err(entry_line + 1, "expected `c <completion>`"))?;
        let usage = lines
            .next()
            .and_then(|l| l.strip_prefix("u "))
            .and_then(|u| u.split_once(' '))
            .and_then(|(p, c)| Some((p.parse().ok()?, c.parse().ok()?)))
            .map(|(prompt_tokens, completion_tokens)| Usage {
                prompt_tokens,
                completion_tokens,
            })
            .ok_or_else(|| {
                parse_err(
                    entry_line + 2,
                    "expected `u <prompt-tokens> <completion-tokens>`",
                )
            })?;
        parsed.push((
            v1_unescape(prompt),
            Completion {
                text: v1_unescape(text),
                usage,
            },
        ));
    }
    if lines.next().is_some() {
        return Err(parse_err(
            4 + declared * 3,
            "trailing data after the declared entries",
        ));
    }
    Ok(parsed)
}

/// Inverse of the v1 snapshot escape (`\n`, `\r`, `\\`); unknown escapes
/// pass through verbatim.
fn v1_unescape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars();
    while let Some(ch) = chars.next() {
        if ch != '\\' {
            out.push(ch);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('\\') => out.push('\\'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("udm-store-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("cache.udmstore")
    }

    fn cleanup(path: &Path) {
        if let Some(dir) = path.parent() {
            let _ = std::fs::remove_dir_all(dir);
        }
    }

    fn completion(text: &str, tokens: usize) -> Arc<Completion> {
        Arc::new(Completion {
            text: text.to_string(),
            usage: Usage {
                prompt_tokens: tokens,
                completion_tokens: tokens / 2,
            },
        })
    }

    #[test]
    fn roundtrip_and_reopen() {
        let path = temp_path("roundtrip");
        let store = CacheStore::open(&path, "m", StoreConfig::default()).unwrap();
        assert!(store.is_empty());
        assert!(store.offer("alpha", &completion("A", 10)));
        assert!(store.offer("beta\nmultiline", &completion("B", 20)));
        assert_eq!(store.get("alpha").unwrap().text, "A");
        assert_eq!(store.get("beta\nmultiline").unwrap().text, "B");
        assert!(store.get("gamma").is_none());
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.admitted), (2, 1, 2));

        drop(store);
        let reopened = CacheStore::open(&path, "m", StoreConfig::default()).unwrap();
        assert_eq!(reopened.len(), 2);
        assert_eq!(reopened.generation(), 2, "each open bumps the generation");
        let b = reopened.get("beta\nmultiline").unwrap();
        assert_eq!(b.text, "B");
        assert_eq!(b.usage.prompt_tokens, 20);
        cleanup(&path);
    }

    #[test]
    fn wrong_model_and_wrong_version_fail_cleanly() {
        let path = temp_path("guards");
        let store = CacheStore::open(&path, "model-a", StoreConfig::default()).unwrap();
        store.offer("p", &completion("c", 1));
        drop(store);
        let before = std::fs::read(&path).unwrap();
        assert!(matches!(
            CacheStore::open(&path, "model-b", StoreConfig::default()),
            Err(StoreError::ModelMismatch { .. })
        ));
        // Version tampering: bump the version field in place.
        let mut tampered = before.clone();
        tampered[8] = 9;
        std::fs::write(&path, &tampered).unwrap();
        assert!(matches!(
            CacheStore::open(&path, "model-a", StoreConfig::default()),
            Err(StoreError::Version { found: 9 })
        ));
        assert_eq!(
            std::fs::read(&path).unwrap(),
            tampered,
            "failed opens must not modify the file"
        );
        cleanup(&path);
    }

    #[test]
    fn admission_gates_one_touch_keys_at_capacity() {
        let path = temp_path("admission");
        let config = StoreConfig::default().with_max_entries(4);
        let store = CacheStore::open(&path, "m", config).unwrap();
        for i in 0..4 {
            assert!(store.offer(&format!("hot {i}"), &completion("h", 1)));
        }
        // A scan of one-touch keys at capacity: every offer rejected.
        for i in 0..50 {
            assert!(
                !store.offer(&format!("scan {i}"), &completion("s", 1)),
                "one-touch scan key {i} must be rejected at capacity"
            );
        }
        assert_eq!(store.len(), 4);
        let stats = store.stats();
        assert_eq!(stats.rejected, 50);
        assert_eq!(stats.evicted, 0);
        for i in 0..4 {
            assert!(store.get(&format!("hot {i}")).is_some(), "hot set resident");
        }
        // A key with a prior access earns admission and displaces the
        // FIFO victim. Three probes = doorkeeper + two sketch bumps =
        // estimate 3; the tiered cache reaches the same estimate on a
        // key's second probe-plus-offer access.
        let _ = store.get("promoted");
        let _ = store.get("promoted");
        let _ = store.get("promoted");
        assert!(store.offer("promoted", &completion("p", 1)));
        assert_eq!(store.stats().evicted, 1);
        assert!(store.get("hot 0").is_none(), "FIFO victim displaced");
        cleanup(&path);
    }

    #[test]
    fn compaction_reclaims_dead_frames_and_roundtrips() {
        let path = temp_path("compact");
        let config = StoreConfig::default().with_max_entries(2);
        let store = CacheStore::open(&path, "m", config).unwrap();
        store.offer("a", &completion("A", 1));
        store.offer("b", &completion("B", 1));
        // Promote two newcomers through repeated sightings (estimate 3).
        for key in ["c", "d"] {
            let _ = store.get(key);
            let _ = store.get(key);
            let _ = store.get(key);
            assert!(store.offer(key, &completion(&key.to_uppercase(), 1)));
        }
        assert_eq!(store.dead_frames(), 2);
        let size_before = std::fs::metadata(&path).unwrap().len();
        let dropped = store.compact().unwrap();
        assert_eq!(dropped, 2);
        assert!(std::fs::metadata(&path).unwrap().len() < size_before);
        assert_eq!(store.dead_frames(), 0);
        assert_eq!(store.stats().compactions, 1);
        assert_eq!(store.stats().compacted_frames, 2);
        assert_eq!(store.get("c").unwrap().text, "C");
        assert_eq!(store.get("d").unwrap().text, "D");
        assert!(store.get("a").is_none());

        // The compacted file reopens clean.
        drop(store);
        let reopened = CacheStore::open(&path, "m", config).unwrap();
        assert_eq!(reopened.canonical_prompts(), vec!["c", "d"]);
        cleanup(&path);
    }

    #[test]
    fn max_age_expires_untouched_entries_across_opens() {
        let path = temp_path("maxage");
        let config = StoreConfig::default().with_max_age(1);
        let store = CacheStore::open(&path, "m", config).unwrap();
        store.offer("old", &completion("O", 1));
        store.offer("fresh", &completion("F", 1));
        drop(store);
        // Open 2: touch only "fresh"; compaction persists the refreshed
        // generation (touches refresh the in-memory index, the file
        // itself is append-only).
        let store = CacheStore::open(&path, "m", config).unwrap();
        assert!(store.get("fresh").is_some());
        store.compact().unwrap();
        drop(store);
        // Open 3: "old" was last touched at generation 1 → age 2 > 1.
        let store = CacheStore::open(&path, "m", config).unwrap();
        assert!(store.get("old").is_none(), "untouched entry expired");
        assert!(store.get("fresh").is_some(), "touched entry survives");
        assert_eq!(store.stats().expired, 1);
        cleanup(&path);
    }

    #[test]
    fn truncation_at_every_byte_fails_clean_or_drops_tail() {
        let path = temp_path("trunc");
        let store = CacheStore::open(&path, "m", StoreConfig::default()).unwrap();
        store.offer("alpha", &completion("A", 3));
        store.offer("beta", &completion("B", 4));
        drop(store);
        let full = std::fs::read(&path).unwrap();
        for cut in 0..full.len() {
            let result = scan_store(&full[..cut], "m");
            match result {
                Ok(scan) => {
                    // A cut exactly on a frame boundary is a valid shorter
                    // store; anything else must error.
                    assert!(
                        scan.frames <= 2,
                        "truncated scan cannot see more frames than written"
                    );
                }
                Err(
                    StoreError::Format(_)
                    | StoreError::Version { .. }
                    | StoreError::ModelMismatch { .. },
                ) => {}
                Err(other) => panic!("unexpected error class at cut {cut}: {other}"),
            }
        }
        cleanup(&path);
    }

    #[test]
    fn v1_import_preserves_entries_and_rejects_mismatches() {
        let path = temp_path("v1import");
        let store = CacheStore::open(&path, "mock", StoreConfig::default()).unwrap();
        let snapshot = "unidm-prompt-cache v1\nmodel mock\nentries 2\n\
                        p alpha\\nline\nc answer one\nu 10 5\n\
                        p beta\nc answer two\nu 4 2\n";
        assert_eq!(store.import_v1(snapshot).unwrap(), 2);
        assert_eq!(store.get("alpha\nline").unwrap().text, "answer one");
        assert_eq!(store.get("beta").unwrap().usage.completion_tokens, 2);
        // Re-import is idempotent (first admission wins).
        assert_eq!(store.import_v1(snapshot).unwrap(), 0);

        let wrong_model = snapshot.replace("model mock", "model other");
        assert!(matches!(
            store.import_v1(&wrong_model),
            Err(StoreError::ModelMismatch { .. })
        ));
        let len_before = store.len();
        let truncated = &snapshot[..snapshot.len() - 10];
        assert!(matches!(
            store.import_v1(truncated),
            Err(StoreError::Format(_))
        ));
        assert_eq!(store.len(), len_before, "failed import admits nothing");
        cleanup(&path);
    }

    #[test]
    fn store_stats_merge_is_commutative_and_exact() {
        let a = StoreStats {
            hits: 3,
            misses: 5,
            admitted: 2,
            rejected: 7,
            evicted: 1,
            expired: 4,
            compactions: 1,
            compacted_frames: 9,
        };
        let b = StoreStats {
            hits: 11,
            misses: 13,
            admitted: 17,
            rejected: 19,
            evicted: 23,
            expired: 29,
            compactions: 31,
            compacted_frames: 37,
        };
        let mut ab = a;
        ab.merge(b);
        let mut ba = b;
        ba.merge(a);
        assert_eq!(ab, ba);
        assert_eq!(ab.hits, 14);
        assert_eq!(ab.compacted_frames, 46);
    }

    #[test]
    fn tinylfu_is_deterministic_and_scan_resistant() {
        let mut f1 = TinyLfu::new(42, 64);
        let mut f2 = TinyLfu::new(42, 64);
        for i in 0..10_000u64 {
            let h = fnv1a(format!("key {}", i % 64).as_bytes());
            f1.touch(h);
            f2.touch(h);
        }
        for i in 0..64u64 {
            let h = fnv1a(format!("key {i}").as_bytes());
            assert_eq!(f1.estimate(h), f2.estimate(h), "same history, same filter");
            assert!(f1.estimate(h) >= 2, "hot keys estimate as repeats");
        }
        // A never-seen key estimates below the admission bar.
        assert!(f1.estimate(fnv1a(b"cold key")) < 2);
        // A long one-touch scan must not promote its keys to "frequent":
        // aging every 10 × capacity touches keeps the doorkeeper sparse,
        // so first-sighting estimates stay below the admission bar.
        let mut false_frequent = 0usize;
        for k in 0..100_000u64 {
            let h = fnv1a(format!("scan key {k}").as_bytes());
            if f1.estimate(h) >= 2 {
                false_frequent += 1;
            }
            f1.touch(h);
        }
        assert_eq!(
            false_frequent, 0,
            "one-touch scan keys must never estimate as frequent"
        );
    }
}
