//! Pipeline configuration, including the ablation switches of Tables 8–10.

/// Configuration of a [`crate::UniDm`] pipeline.
///
/// The four booleans correspond one-to-one to the columns of the paper's
/// ablation tables; the numeric knobs match the paper's defaults (one
/// meta-retrieved attribute, top-3 of 50 sampled records).
///
/// Everything here is a pure function of the task — a run with a given
/// config is deterministic whatever executes it, which is what lets
/// [`crate::BatchRunner`] reorder runs across workers (and, in pipelined
/// mode, overlap their endpoint calls through [`crate::Dispatcher`])
/// without changing a single output byte. Serving-side behaviour —
/// retries, rate limits, hedging — lives in [`crate::BackendConfig`]
/// instead, keeping "what the pipeline computes" and "how calls reach the
/// endpoint" independently configurable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Enable meta-wise retrieval (`p_rm`); otherwise pick attributes at
    /// random.
    pub meta_retrieval: bool,
    /// Enable instance-wise retrieval (`p_ri`); otherwise pick context
    /// records at random.
    pub instance_retrieval: bool,
    /// Enable context data parsing (`p_dp`); otherwise use raw
    /// serialization.
    pub context_parsing: bool,
    /// Enable target prompt construction (`p_cq`); otherwise concatenate
    /// task, context and query directly.
    pub prompt_construction: bool,
    /// Records sampled as instance-retrieval candidates (paper: 50).
    pub sample_size: usize,
    /// Context records kept after scoring (paper: 3).
    pub top_k: usize,
    /// Seed for the random sampling in retrieval (and the random fallbacks
    /// when components are disabled).
    pub seed: u64,
}

impl PipelineConfig {
    /// The paper's default setting: everything on, 50-record sample, top-3.
    pub fn paper_default() -> Self {
        PipelineConfig {
            meta_retrieval: true,
            instance_retrieval: true,
            context_parsing: true,
            prompt_construction: true,
            sample_size: 50,
            top_k: 3,
            seed: 0,
        }
    }

    /// Everything off: the "random context, serialized, flat prompt"
    /// baseline row of the ablation tables.
    pub fn all_off() -> Self {
        PipelineConfig {
            meta_retrieval: false,
            instance_retrieval: false,
            context_parsing: false,
            prompt_construction: false,
            ..Self::paper_default()
        }
    }

    /// Replaces the seed (builder-style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The "UniDM (random)" setting of Table 1: context records are chosen
    /// at random (instance-wise retrieval off) while attribute selection,
    /// parsing and prompt construction stay on.
    pub fn random_context() -> Self {
        PipelineConfig {
            instance_retrieval: false,
            ..Self::paper_default()
        }
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_paper() {
        let c = PipelineConfig::paper_default();
        assert!(c.meta_retrieval && c.instance_retrieval);
        assert!(c.context_parsing && c.prompt_construction);
        assert_eq!(c.sample_size, 50);
        assert_eq!(c.top_k, 3);
    }

    #[test]
    fn ablation_constructors() {
        assert!(!PipelineConfig::all_off().meta_retrieval);
        let r = PipelineConfig::random_context();
        assert!(!r.instance_retrieval && r.context_parsing);
    }

    #[test]
    fn with_seed_builder() {
        assert_eq!(PipelineConfig::paper_default().with_seed(9).seed, 9);
    }
}
