//! Multi-endpoint routing and model cascades: `RoutedBackend` and
//! `CascadeBackend`.
//!
//! A deployed UniDM instance does not talk to one endpoint. It talks to a
//! *fleet* — N replicas of the workhorse model behind a load balancer,
//! plus a cheap small model that can answer most prompts at a fraction of
//! the large model's cost. This module is that layer:
//!
//! ```text
//! PromptCache                       (hits stop here)
//!   └─ CascadeBackend              (cheap tier first, escalate on weak answers)
//!        ├─ RoutedBackend[cheap]   (N weighted replicas)
//!        └─ RoutedBackend[large]
//!             ├─ endpoint 0: breaker ── AIMD bucket ── SimBackend ── model
//!             ├─ endpoint 1: breaker ── AIMD bucket ── SimBackend ── model
//!             └─ endpoint 2: ...
//! ```
//!
//! [`RoutedBackend`] implements [`LanguageModel`] over N weighted
//! endpoints. Each endpoint carries its own circuit breaker, latency
//! sketch and an AIMD-adapted token bucket: observed `RateLimited` (429)
//! errors halve the endpoint's admission rate (multiplicative decrease,
//! floored), successes add it back one step at a time (additive
//! increase, capped) — all in integer micro-tokens, so rate trajectories
//! are exactly reproducible. A prompt is routed by a seeded weighted draw
//! over the endpoints whose breakers admit it; retries re-draw with the
//! attempt index mixed in, so a failing endpoint sheds traffic to its
//! healthy peers even before its breaker opens.
//!
//! [`CascadeBackend`] stacks the cost policy on top: every prompt goes to
//! the cheap tier first, and escalates to the large tier only when the
//! cheap answer is unparseable or falls below a confidence gate
//! ([`answer_confidence_permille`]) — the paper-adjacent "model cascade"
//! that buys most of the large model's accuracy at a fraction of its
//! billed cost ([`LlmProfile::cost_micro_per_token`]).
//!
//! # Determinism
//!
//! Routing decisions are pure functions of `(seed, prompt, attempt)`;
//! fault schedules are endpoint-aware (each replica's [`SimBackend`] mixes
//! its endpoint id into the slot draw); successes always return the inner
//! model's completion. Answers are therefore bit-identical to a direct
//! call whatever the fleet does, and a serial rerun reproduces
//! [`RouterStats`] — including per-endpoint call counts — exactly.
//!
//! # Examples
//!
//! ```
//! use unidm::route::{AimdPolicy, EndpointConfig, RoutedBackend};
//! use unidm_llm::{FaultPlan, LanguageModel, LlmProfile, MockLlm};
//! use unidm_world::World;
//!
//! let world = World::generate(42);
//! let llm = MockLlm::new(&world, LlmProfile::gpt3_175b(), 1);
//! let router = RoutedBackend::new(7)
//!     .endpoint(&llm, EndpointConfig::new().with_faults(FaultPlan::moderate(7)))
//!     .endpoint(&llm, EndpointConfig::new().with_faults(FaultPlan::moderate(7)));
//!
//! let reply = router.complete("The capital of Denmark is __.").unwrap();
//! assert_eq!(reply, llm.complete("The capital of Denmark is __.").unwrap(),
//!            "routing never changes answers");
//! let stats = router.stats();
//! assert_eq!(stats.calls, 1);
//! assert_eq!(stats.endpoints.len(), 2);
//! ```

use std::sync::{Arc, Mutex, MutexGuard};

use unidm_llm::{
    Clock, Completion, Dice, FaultPlan, FaultStats, LanguageModel, LlmError, LlmProfile,
    SimBackend, Usage, VirtualClock,
};

use crate::backend::{
    BackendConfig, BackendStats, BreakerPolicy, LatencySketch, RetryPolicy, TOKEN,
};

/// Hard cap on endpoints a [`RoutePlan`] can describe (the plan stores a
/// fixed-size weight array to stay `Copy`/`Eq`/`Hash`). A `RoutedBackend`
/// built directly through [`RoutedBackend::endpoint`] has no such cap.
pub const MAX_ROUTE_ENDPOINTS: usize = 8;

/// AIMD rate-adaptation policy for one endpoint: a token bucket whose
/// sustained rate moves between `min_per_sec` and `max_per_sec` — halved
/// on every observed 429 ([`LlmError::RateLimited`]), raised by
/// `increase_per_sec` on every success. All fields are integers, so the
/// rate trajectory is exact and the policy stays `Eq`/`Hash`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AimdPolicy {
    /// Rate the endpoint starts at, in attempts per second.
    pub initial_per_sec: u64,
    /// Floor of the multiplicative decrease.
    pub min_per_sec: u64,
    /// Ceiling of the additive increase.
    pub max_per_sec: u64,
    /// Attempts-per-second added per successful attempt (0 freezes the
    /// rate — a plain fixed token bucket).
    pub increase_per_sec: u64,
    /// Bucket capacity (burst headroom), in attempts.
    pub burst: u64,
}

impl AimdPolicy {
    /// An adaptive policy starting at `initial` attempts/sec: floor
    /// `initial/8`, ceiling `initial*4`, +1/sec per success, burst
    /// `initial/10` (all clamped to at least 1).
    pub fn per_sec(initial: u64) -> Self {
        let initial = initial.max(1);
        AimdPolicy {
            initial_per_sec: initial,
            min_per_sec: (initial / 8).max(1),
            max_per_sec: initial.saturating_mul(4),
            increase_per_sec: 1,
            burst: (initial / 10).max(1),
        }
    }

    /// A non-adaptive policy: a plain token bucket of `per_sec` sustained
    /// with `burst` headroom (no increases, no decreases).
    pub fn fixed(per_sec: u64, burst: u64) -> Self {
        let rate = per_sec.max(1);
        AimdPolicy {
            initial_per_sec: rate,
            min_per_sec: rate,
            max_per_sec: rate,
            increase_per_sec: 0,
            burst: burst.max(1),
        }
    }
}

/// A `Copy` description of a replica-routing fleet, carried inside
/// [`BackendConfig`] so the eval drivers opt into routing without any
/// wiring changes: [`BackendConfig::wrap`] fans the single inner model out
/// into `replicas` endpoints, each with its own breaker, AIMD bucket and
/// (when [`BackendConfig::faults`] is set) an endpoint-aware fault
/// injector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RoutePlan {
    /// Number of replica endpoints (clamped to `1..=MAX_ROUTE_ENDPOINTS`).
    pub replicas: u32,
    /// Per-replica routing weights (entries beyond `replicas` are unused;
    /// a zero weight is treated as 1).
    pub weights: [u16; MAX_ROUTE_ENDPOINTS],
    /// Per-endpoint circuit breaker (`None` disables breakers).
    pub breaker: Option<BreakerPolicy>,
    /// Per-endpoint AIMD rate adaptation (`None` = unlimited).
    pub aimd: Option<AimdPolicy>,
}

impl RoutePlan {
    /// An equal-weight fleet of `n` replicas with default per-endpoint
    /// breakers and no rate adaptation.
    pub fn replicas(n: u32) -> Self {
        RoutePlan {
            replicas: n.clamp(1, MAX_ROUTE_ENDPOINTS as u32),
            weights: [1; MAX_ROUTE_ENDPOINTS],
            breaker: Some(BreakerPolicy::default()),
            aimd: None,
        }
    }

    /// Sets the routing weight of replica `index` (builder-style).
    pub fn with_weight(mut self, index: usize, weight: u16) -> Self {
        if index < MAX_ROUTE_ENDPOINTS {
            self.weights[index] = weight;
        }
        self
    }

    /// Replaces the per-endpoint breaker policy (builder-style).
    pub fn with_breaker(mut self, breaker: BreakerPolicy) -> Self {
        self.breaker = Some(breaker);
        self
    }

    /// Disables per-endpoint breakers (builder-style).
    pub fn without_breaker(mut self) -> Self {
        self.breaker = None;
        self
    }

    /// Adds per-endpoint AIMD rate adaptation (builder-style).
    pub fn with_aimd(mut self, aimd: AimdPolicy) -> Self {
        self.aimd = Some(aimd);
        self
    }
}

/// Configuration of one endpoint added to a [`RoutedBackend`].
#[derive(Debug, Clone, Copy)]
pub struct EndpointConfig {
    /// Routing weight relative to the other endpoints (0 is treated as 1).
    pub weight: u32,
    /// Fault-injection plan: when set, the router owns a [`SimBackend`]
    /// over the endpoint's model, tagged with this endpoint's id so
    /// replicas sharing a plan draw independent fault schedules.
    pub faults: Option<FaultPlan>,
    /// Circuit breaker for this endpoint (`None` = none).
    pub breaker: Option<BreakerPolicy>,
    /// AIMD rate adaptation for this endpoint (`None` = unlimited).
    pub aimd: Option<AimdPolicy>,
    /// Billing cost per token in integer micro-units (see
    /// [`LlmProfile::cost_micro_per_token`]); 0 when cost is untracked.
    pub cost_micro_per_token: u64,
}

impl EndpointConfig {
    /// Weight-1 endpoint: no faults, no breaker, no rate adaptation,
    /// untracked cost.
    pub fn new() -> Self {
        EndpointConfig {
            weight: 1,
            faults: None,
            breaker: None,
            aimd: None,
            cost_micro_per_token: 0,
        }
    }

    /// Sets the routing weight (builder-style).
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight;
        self
    }

    /// Interposes a seeded, endpoint-aware fault injector (builder-style).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Adds a circuit breaker (builder-style).
    pub fn with_breaker(mut self, breaker: BreakerPolicy) -> Self {
        self.breaker = Some(breaker);
        self
    }

    /// Adds AIMD rate adaptation (builder-style).
    pub fn with_aimd(mut self, aimd: AimdPolicy) -> Self {
        self.aimd = Some(aimd);
        self
    }

    /// Sets the per-token billing cost from a model profile
    /// (builder-style).
    pub fn with_cost_of(mut self, profile: &LlmProfile) -> Self {
        self.cost_micro_per_token = profile.cost_micro_per_token();
        self
    }

    /// Sets the per-token billing cost directly (builder-style).
    pub fn with_cost_micro_per_token(mut self, cost: u64) -> Self {
        self.cost_micro_per_token = cost;
        self
    }
}

impl Default for EndpointConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Exact counters for one endpoint of a router (or one tier of a
/// cascade). Every field is an integer (the sketch is integer buckets),
/// so [`EndpointStats::merge`] is exact and order-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EndpointStats {
    /// Logical calls whose *first* attempt was routed to this endpoint.
    pub calls: u64,
    /// Attempts that reached this endpoint (first tries and retries).
    pub attempts: u64,
    /// Attempts that returned a completion.
    pub successes: u64,
    /// Timeout errors observed from this endpoint.
    pub timeouts: u64,
    /// 429-style rate-limit rejections observed from this endpoint.
    pub rate_limited: u64,
    /// Transient 5xx-style errors observed from this endpoint.
    pub transients: u64,
    /// Closed→open transitions of this endpoint's breaker.
    pub breaker_trips: u64,
    /// Selections that skipped this endpoint because its breaker was open
    /// (traffic shed to its peers, no attempt consumed).
    pub breaker_open_skips: u64,
    /// Attempts that waited for an AIMD token.
    pub throttle_waits: u64,
    /// Total clock time spent waiting for AIMD tokens, microseconds.
    pub throttle_wait_us: u64,
    /// AIMD tokens consumed (one per attempt when a bucket is configured).
    pub rate_tokens: u64,
    /// Additive rate increases applied (successes below the ceiling).
    pub aimd_increases: u64,
    /// Multiplicative rate decreases applied (429s above the floor).
    pub aimd_decreases: u64,
    /// Prompt tokens of completions served by this endpoint.
    pub prompt_tokens: u64,
    /// Completion tokens of completions served by this endpoint.
    pub completion_tokens: u64,
    /// Billed cost of those tokens, in integer micro-units.
    pub billed_micro: u64,
    /// Latencies of successful attempts on this endpoint.
    pub latency: LatencySketch,
}

impl EndpointStats {
    /// Folds `other` into `self` — exact integer addition on every field.
    pub fn merge(&mut self, other: &EndpointStats) {
        self.calls += other.calls;
        self.attempts += other.attempts;
        self.successes += other.successes;
        self.timeouts += other.timeouts;
        self.rate_limited += other.rate_limited;
        self.transients += other.transients;
        self.breaker_trips += other.breaker_trips;
        self.breaker_open_skips += other.breaker_open_skips;
        self.throttle_waits += other.throttle_waits;
        self.throttle_wait_us += other.throttle_wait_us;
        self.rate_tokens += other.rate_tokens;
        self.aimd_increases += other.aimd_increases;
        self.aimd_decreases += other.aimd_decreases;
        self.prompt_tokens += other.prompt_tokens;
        self.completion_tokens += other.completion_tokens;
        self.billed_micro += other.billed_micro;
        self.latency.merge(&other.latency);
    }

    /// Total tokens billed to this endpoint.
    pub fn tokens(&self) -> u64 {
        self.prompt_tokens + self.completion_tokens
    }
}

/// Exact counters of everything a router (or cascade) did, mirroring
/// [`BackendStats`]: every field is an integer, [`RouterStats::merge`] is
/// commutative bucket-and-counter addition, and a serial rerun of the
/// same workload reproduces the whole struct bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RouterStats {
    /// Logical `complete` calls that entered the router.
    pub calls: u64,
    /// Calls that returned a completion.
    pub answers: u64,
    /// Calls that ultimately returned an error.
    pub failures: u64,
    /// Retries across all calls.
    pub retries: u64,
    /// Selections that found *every* endpoint's breaker open (the call
    /// backs off for the shortest remaining cooldown and retries).
    pub all_open: u64,
    /// Cascade: prompts escalated from the cheap tier to the large tier.
    pub escalations: u64,
    /// Cascade: escalations triggered by an unparseable cheap answer
    /// (confidence 0).
    pub unparseable: u64,
    /// Cascade: escalations triggered by a parseable but low-confidence
    /// cheap answer.
    pub low_confidence: u64,
    /// Cascade: escalations triggered by a cheap-tier error.
    pub error_escalations: u64,
    /// End-to-end latencies of successful calls (router only; a cascade
    /// has no clock of its own and leaves this empty).
    pub request_latency: LatencySketch,
    /// Per-endpoint counters, indexed by endpoint id (for a cascade:
    /// index 0 is the cheap tier, index 1 the large tier).
    pub endpoints: Vec<EndpointStats>,
}

impl RouterStats {
    /// Folds `other` into `self` — exact integer addition on every
    /// counter, endpoint-wise on the per-endpoint vectors (shorter
    /// vectors are padded), commutative like [`BackendStats::merge`].
    pub fn merge(&mut self, other: &RouterStats) {
        self.calls += other.calls;
        self.answers += other.answers;
        self.failures += other.failures;
        self.retries += other.retries;
        self.all_open += other.all_open;
        self.escalations += other.escalations;
        self.unparseable += other.unparseable;
        self.low_confidence += other.low_confidence;
        self.error_escalations += other.error_escalations;
        self.request_latency.merge(&other.request_latency);
        if self.endpoints.len() < other.endpoints.len() {
            self.endpoints
                .resize(other.endpoints.len(), EndpointStats::default());
        }
        for (mine, theirs) in self.endpoints.iter_mut().zip(other.endpoints.iter()) {
            mine.merge(theirs);
        }
    }

    /// Total attempts across all endpoints.
    pub fn attempts(&self) -> u64 {
        self.endpoints.iter().map(|e| e.attempts).sum()
    }

    /// Total tokens across all endpoints.
    pub fn tokens(&self) -> u64 {
        self.endpoints.iter().map(EndpointStats::tokens).sum()
    }

    /// Total billed cost across all endpoints, integer micro-units.
    pub fn billed_micro(&self) -> u64 {
        self.endpoints.iter().map(|e| e.billed_micro).sum()
    }

    /// Total breaker trips across all endpoints.
    pub fn breaker_trips(&self) -> u64 {
        self.endpoints.iter().map(|e| e.breaker_trips).sum()
    }

    /// Tokens per answered call, in milli-tokens (exact integer:
    /// `tokens * 1000 / answers`; 0 when nothing was answered).
    pub fn tokens_per_answer_milli(&self) -> u64 {
        if self.answers == 0 {
            return 0;
        }
        self.tokens() * 1000 / self.answers
    }

    /// Billed micro-units per answered call (0 when nothing was
    /// answered).
    pub fn billed_per_answer_micro(&self) -> u64 {
        if self.answers == 0 {
            return 0;
        }
        self.billed_micro() / self.answers
    }

    /// The router's counters folded into the flat [`BackendStats`] shape,
    /// so routers aggregate alongside resilient backends and dispatchers
    /// (open-breaker skips map to `breaker_fast_fails`).
    pub fn backend_stats(&self) -> BackendStats {
        let mut out = BackendStats {
            calls: self.calls,
            retries: self.retries,
            failures: self.failures,
            request_latency: self.request_latency,
            ..BackendStats::default()
        };
        for e in &self.endpoints {
            out.attempts += e.attempts;
            out.timeouts += e.timeouts;
            out.rate_limited += e.rate_limited;
            out.transients += e.transients;
            out.breaker_trips += e.breaker_trips;
            out.breaker_fast_fails += e.breaker_open_skips;
            out.throttle_waits += e.throttle_waits;
            out.throttle_wait_us += e.throttle_wait_us;
            out.rate_tokens += e.rate_tokens;
            out.attempt_latency.merge(&e.latency);
        }
        out
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Health {
    Closed,
    Open,
    HalfOpen,
}

#[derive(Debug)]
struct Breaker {
    policy: BreakerPolicy,
    health: Health,
    consecutive_failures: u32,
    open_until_us: u64,
}

impl Breaker {
    fn new(policy: BreakerPolicy) -> Self {
        Breaker {
            policy,
            health: Health::Closed,
            consecutive_failures: 0,
            open_until_us: 0,
        }
    }

    /// `Ok` to route here, `Err(remaining cooldown)` to skip. An expired
    /// cooldown half-opens the breaker, admitting the caller as a probe.
    fn admit(&mut self, now_us: u64) -> Result<(), u64> {
        match self.health {
            Health::Closed | Health::HalfOpen => Ok(()),
            Health::Open => {
                if now_us >= self.open_until_us {
                    self.health = Health::HalfOpen;
                    Ok(())
                } else {
                    Err(self.open_until_us - now_us)
                }
            }
        }
    }

    fn success(&mut self) {
        self.health = Health::Closed;
        self.consecutive_failures = 0;
    }

    /// Records a failure; returns whether the breaker tripped
    /// (transitioned to open) on this failure.
    fn failure(&mut self, now_us: u64) -> bool {
        self.consecutive_failures += 1;
        let should_open = self.health == Health::HalfOpen
            || self.consecutive_failures >= self.policy.failure_threshold;
        if !should_open {
            return false;
        }
        let tripped = self.health != Health::Open;
        self.health = Health::Open;
        self.open_until_us = now_us + self.policy.cooldown_us;
        tripped
    }
}

#[derive(Debug)]
struct AimdBucket {
    rate_per_sec: u64,
    units: u64,
    last_us: u64,
}

enum EndpointModel<'a> {
    Direct(&'a dyn LanguageModel),
    Sim(Box<SimBackend<'a>>),
}

impl EndpointModel<'_> {
    fn model(&self) -> &dyn LanguageModel {
        match self {
            EndpointModel::Direct(m) => *m,
            EndpointModel::Sim(sim) => sim.as_ref(),
        }
    }
}

struct EndpointState<'a> {
    model: EndpointModel<'a>,
    /// Address of the caller-supplied model, for usage deduplication:
    /// replicas over one shared inner model share one usage counter.
    origin: usize,
    weight: u64,
    cost_micro_per_token: u64,
    breaker: Option<Mutex<Breaker>>,
    aimd: Option<(AimdPolicy, Mutex<AimdBucket>)>,
    stats: Mutex<EndpointStats>,
}

impl EndpointState<'_> {
    fn lock_stats(&self) -> MutexGuard<'_, EndpointStats> {
        self.stats.lock().expect("endpoint stats lock poisoned")
    }

    /// Takes one AIMD token, waiting on the clock if the bucket is empty.
    /// Returns the time waited, in microseconds.
    fn acquire_token(&self, clock: &Arc<dyn Clock>) -> u64 {
        let Some((policy, bucket)) = &self.aimd else {
            return 0;
        };
        let mut waited = 0u64;
        loop {
            let wait = {
                let mut b = bucket.lock().expect("aimd bucket lock poisoned");
                let now = clock.now_micros();
                let elapsed = now.saturating_sub(b.last_us);
                let refill = u128::from(elapsed) * u128::from(b.rate_per_sec);
                let cap = u128::from(policy.burst) * u128::from(TOKEN);
                b.units = (u128::from(b.units) + refill).min(cap) as u64;
                b.last_us = now;
                if b.units >= TOKEN {
                    b.units -= TOKEN;
                    return waited;
                }
                let deficit = TOKEN - b.units;
                deficit.div_ceil(b.rate_per_sec.max(1))
            };
            clock.sleep_micros(wait);
            waited += wait;
        }
    }

    /// Additive increase on success; returns whether a step was applied.
    fn aimd_success(&self) -> bool {
        let Some((policy, bucket)) = &self.aimd else {
            return false;
        };
        if policy.increase_per_sec == 0 {
            return false;
        }
        let mut b = bucket.lock().expect("aimd bucket lock poisoned");
        if b.rate_per_sec >= policy.max_per_sec {
            return false;
        }
        b.rate_per_sec = (b.rate_per_sec + policy.increase_per_sec).min(policy.max_per_sec);
        true
    }

    /// Multiplicative decrease on an observed 429; returns whether the
    /// rate actually moved.
    fn aimd_decrease(&self) -> bool {
        let Some((policy, bucket)) = &self.aimd else {
            return false;
        };
        let mut b = bucket.lock().expect("aimd bucket lock poisoned");
        if b.rate_per_sec <= policy.min_per_sec {
            return false;
        }
        b.rate_per_sec = (b.rate_per_sec / 2).max(policy.min_per_sec);
        true
    }

    fn record_success(&self, completion: &Completion, latency_us: u64) {
        let mut stats = self.lock_stats();
        stats.successes += 1;
        stats.latency.record(latency_us);
        stats.prompt_tokens += completion.usage.prompt_tokens as u64;
        stats.completion_tokens += completion.usage.completion_tokens as u64;
        stats.billed_micro += completion.usage.total() as u64 * self.cost_micro_per_token;
    }
}

/// A weighted multi-endpoint router implementing [`LanguageModel`].
///
/// See the [module docs](self) for the layering and determinism story.
/// Build one endpoint at a time with [`RoutedBackend::endpoint`], or let
/// [`BackendConfig::wrap`] fan a single model out into replicas via
/// [`RoutePlan`].
pub struct RoutedBackend<'a> {
    name: String,
    endpoints: Vec<EndpointState<'a>>,
    retry: RetryPolicy,
    dice: Dice,
    clock: Arc<dyn Clock>,
    scalars: Mutex<RouterStats>,
}

impl std::fmt::Debug for RoutedBackend<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoutedBackend")
            .field("name", &self.name)
            .field("endpoints", &self.endpoints.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl<'a> RoutedBackend<'a> {
    /// An empty router on a fresh [`VirtualClock`]; add endpoints with
    /// [`RoutedBackend::endpoint`]. `seed` drives routing draws and
    /// backoff jitter.
    pub fn new(seed: u64) -> Self {
        RoutedBackend {
            name: "routed[]".to_string(),
            endpoints: Vec::new(),
            retry: RetryPolicy::default(),
            dice: Dice::new(seed),
            clock: Arc::new(VirtualClock::new()),
            scalars: Mutex::new(RouterStats::default()),
        }
    }

    /// Replaces the clock (builder-style). Must be called before any
    /// endpoint is added — fault injectors capture the clock at build
    /// time.
    ///
    /// # Panics
    ///
    /// Panics if endpoints have already been added.
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        assert!(
            self.endpoints.is_empty(),
            "set the clock before adding endpoints"
        );
        self.clock = clock;
        self
    }

    /// Replaces the cross-endpoint retry policy (builder-style).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Adds an endpoint (builder-style). The endpoint id is its index in
    /// insertion order; a [`FaultPlan`] in `config` becomes an owned
    /// [`SimBackend`] tagged with that id, so replicas sharing a plan
    /// draw independent fault schedules.
    pub fn endpoint(mut self, model: &'a dyn LanguageModel, config: EndpointConfig) -> Self {
        let id = self.endpoints.len() as u64;
        let origin = model as *const dyn LanguageModel as *const () as usize;
        let endpoint_model = match config.faults {
            Some(plan) => EndpointModel::Sim(Box::new(
                SimBackend::with_clock(model, plan, self.clock.clone()).with_endpoint(id),
            )),
            None => EndpointModel::Direct(model),
        };
        let now = self.clock.now_micros();
        self.endpoints.push(EndpointState {
            model: endpoint_model,
            origin,
            weight: u64::from(config.weight.max(1)),
            cost_micro_per_token: config.cost_micro_per_token,
            breaker: config
                .breaker
                .map(|policy| Mutex::new(Breaker::new(policy))),
            aimd: config.aimd.map(|policy| {
                (
                    policy,
                    Mutex::new(AimdBucket {
                        rate_per_sec: policy.initial_per_sec.max(1),
                        units: policy.burst.max(1) * TOKEN,
                        last_us: now,
                    }),
                )
            }),
            stats: Mutex::new(EndpointStats::default()),
        });
        self.name = self.display_name();
        self
    }

    /// Builds a replica fleet over one shared `inner` model from
    /// `config.route` (identity plan when unset): each replica gets the
    /// plan's breaker and AIMD policies plus an endpoint-aware copy of
    /// `config.faults`. `config.deadline_us` and `config.max_in_flight`
    /// are blocking-stack features and are not applied here.
    pub fn from_plan(inner: &'a dyn LanguageModel, config: BackendConfig) -> Self {
        let plan = config.route.unwrap_or_else(|| RoutePlan::replicas(1));
        let replicas = plan.replicas.clamp(1, MAX_ROUTE_ENDPOINTS as u32) as usize;
        let mut router = RoutedBackend::new(config.seed).with_retry(config.retry);
        for i in 0..replicas {
            let mut endpoint = EndpointConfig::new().with_weight(u32::from(plan.weights[i].max(1)));
            if let Some(faults) = config.faults {
                endpoint = endpoint.with_faults(faults);
            }
            if let Some(breaker) = plan.breaker {
                endpoint = endpoint.with_breaker(breaker);
            }
            if let Some(aimd) = plan.aimd {
                endpoint = endpoint.with_aimd(aimd);
            }
            router = router.endpoint(inner, endpoint);
        }
        router
    }

    fn display_name(&self) -> String {
        let names: Vec<&str> = self
            .endpoints
            .iter()
            .map(|e| e.model.model().name())
            .collect();
        match names.split_first() {
            None => "routed[]".to_string(),
            Some((first, rest)) if rest.iter().all(|n| n == first) => {
                format!("routed[{first}x{}]", names.len())
            }
            _ => format!("routed[{}]", names.join("+")),
        }
    }

    /// The clock every routing decision and wait runs on.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Number of endpoints.
    pub fn endpoints(&self) -> usize {
        self.endpoints.len()
    }

    /// A snapshot of the router counters, per-endpoint stats included.
    pub fn stats(&self) -> RouterStats {
        let mut stats = self
            .scalars
            .lock()
            .expect("router stats lock poisoned")
            .clone();
        stats.endpoints = self.endpoints.iter().map(|e| *e.lock_stats()).collect();
        stats
    }

    /// The router's counters in the flat [`BackendStats`] shape.
    pub fn backend_stats(&self) -> BackendStats {
        self.stats().backend_stats()
    }

    /// Merged fault-injection counters across all endpoint injectors
    /// (`None` when no endpoint has a fault plan).
    pub fn fault_stats(&self) -> Option<FaultStats> {
        let mut merged: Option<FaultStats> = None;
        for endpoint in &self.endpoints {
            if let EndpointModel::Sim(sim) = &endpoint.model {
                let stats = sim.stats();
                match &mut merged {
                    Some(m) => m.merge(&stats),
                    None => merged = Some(stats),
                }
            }
        }
        merged
    }

    /// The current AIMD rate of endpoint `index`, attempts per second
    /// (`None` when the endpoint has no bucket or does not exist).
    pub fn current_rate_per_sec(&self, index: usize) -> Option<u64> {
        let (_, bucket) = self.endpoints.get(index)?.aimd.as_ref()?;
        Some(
            bucket
                .lock()
                .expect("aimd bucket lock poisoned")
                .rate_per_sec,
        )
    }

    fn lock_scalars(&self) -> MutexGuard<'_, RouterStats> {
        self.scalars.lock().expect("router stats lock poisoned")
    }

    /// Picks an endpoint for attempt `attempt` of `prompt`: a seeded
    /// weighted draw over the endpoints whose breakers admit traffic.
    /// `Err(min remaining cooldown)` when every breaker is open.
    fn select(&self, prompt: &str, attempt: u64) -> Result<usize, u64> {
        let now = self.clock.now_micros();
        let mut admissible: Vec<usize> = Vec::with_capacity(self.endpoints.len());
        let mut min_cooldown = u64::MAX;
        for (i, endpoint) in self.endpoints.iter().enumerate() {
            let admitted = match &endpoint.breaker {
                None => Ok(()),
                Some(breaker) => breaker.lock().expect("breaker lock poisoned").admit(now),
            };
            match admitted {
                Ok(()) => admissible.push(i),
                Err(remaining) => {
                    endpoint.lock_stats().breaker_open_skips += 1;
                    min_cooldown = min_cooldown.min(remaining);
                }
            }
        }
        if admissible.is_empty() {
            return Err(if min_cooldown == u64::MAX {
                0
            } else {
                min_cooldown
            });
        }
        let total: u64 = admissible.iter().map(|&i| self.endpoints[i].weight).sum();
        let roll = (self.dice.uniform(prompt, &format!("route-{attempt}")) * total as f64) as u64;
        let roll = roll.min(total - 1);
        let mut cumulative = 0u64;
        for &i in &admissible {
            cumulative += self.endpoints[i].weight;
            if roll < cumulative {
                return Ok(i);
            }
        }
        Ok(*admissible.last().expect("admissible is non-empty"))
    }

    /// Backoff before retry `n` (1-based) of `prompt`: exponential from
    /// the policy base, capped, then jittered into `[50%, 100%]` by a
    /// deterministic draw — the same scheme as the blocking stack.
    fn backoff_us(&self, prompt: &str, retry: u32) -> u64 {
        let policy = self.retry;
        let doubled = policy
            .base_backoff_us
            .saturating_mul(1u64 << (retry - 1).min(32));
        let ceiling = doubled.min(policy.max_backoff_us);
        let jitter = self.dice.uniform(prompt, &format!("backoff-{retry}"));
        ceiling / 2 + ((ceiling / 2) as f64 * jitter) as u64
    }
}

impl LanguageModel for RoutedBackend<'_> {
    fn name(&self) -> &str {
        &self.name
    }

    fn complete(&self, prompt: &str) -> Result<Arc<Completion>, LlmError> {
        assert!(
            !self.endpoints.is_empty(),
            "RoutedBackend requires at least one endpoint"
        );
        self.lock_scalars().calls += 1;
        let start = self.clock.now_micros();
        let mut retry = 0u32;
        let mut attempt = 0u64;
        loop {
            let err = match self.select(prompt, attempt) {
                Err(cooldown_us) => {
                    self.lock_scalars().all_open += 1;
                    LlmError::CircuitOpen { cooldown_us }
                }
                Ok(index) => {
                    let endpoint = &self.endpoints[index];
                    if attempt == 0 {
                        endpoint.lock_stats().calls += 1;
                    }
                    let waited = endpoint.acquire_token(&self.clock);
                    {
                        let mut stats = endpoint.lock_stats();
                        if waited > 0 {
                            stats.throttle_waits += 1;
                            stats.throttle_wait_us += waited;
                        }
                        if endpoint.aimd.is_some() {
                            stats.rate_tokens += 1;
                        }
                        stats.attempts += 1;
                    }
                    let attempt_start = self.clock.now_micros();
                    match endpoint.model.model().complete(prompt) {
                        Ok(completion) => {
                            if let Some(breaker) = &endpoint.breaker {
                                breaker.lock().expect("breaker lock poisoned").success();
                            }
                            if endpoint.aimd_success() {
                                endpoint.lock_stats().aimd_increases += 1;
                            }
                            let now = self.clock.now_micros();
                            endpoint.record_success(&completion, now - attempt_start);
                            let mut scalars = self.lock_scalars();
                            scalars.answers += 1;
                            scalars.request_latency.record(now - start);
                            return Ok(completion);
                        }
                        Err(e) if e.is_transient() => {
                            {
                                let mut stats = endpoint.lock_stats();
                                match &e {
                                    LlmError::Timeout { .. } => stats.timeouts += 1,
                                    LlmError::RateLimited { .. } => stats.rate_limited += 1,
                                    LlmError::Transient { .. } => stats.transients += 1,
                                    _ => {}
                                }
                            }
                            if matches!(e, LlmError::RateLimited { .. }) && endpoint.aimd_decrease()
                            {
                                endpoint.lock_stats().aimd_decreases += 1;
                            }
                            if let Some(breaker) = &endpoint.breaker {
                                let now = self.clock.now_micros();
                                if breaker.lock().expect("breaker lock poisoned").failure(now) {
                                    endpoint.lock_stats().breaker_trips += 1;
                                }
                            }
                            e
                        }
                        Err(e) => {
                            // Permanent: no endpoint can succeed on the
                            // identical call, so surface it immediately.
                            self.lock_scalars().failures += 1;
                            return Err(e);
                        }
                    }
                }
            };
            if retry >= self.retry.max_retries {
                self.lock_scalars().failures += 1;
                return Err(err);
            }
            retry += 1;
            self.lock_scalars().retries += 1;
            let mut backoff = self.backoff_us(prompt, retry);
            // Honor server hints and breaker cooldowns, as the blocking
            // stack does: sleeping less burns a retry on a guaranteed
            // rejection.
            match err {
                LlmError::RateLimited { retry_after_us } => backoff = backoff.max(retry_after_us),
                LlmError::CircuitOpen { cooldown_us } => backoff = backoff.max(cooldown_us),
                _ => {}
            }
            self.clock.sleep_micros(backoff);
            attempt += 1;
        }
    }

    fn usage(&self) -> Usage {
        let mut seen: Vec<usize> = Vec::with_capacity(self.endpoints.len());
        let mut total = Usage::default();
        for endpoint in &self.endpoints {
            if seen.contains(&endpoint.origin) {
                continue;
            }
            seen.push(endpoint.origin);
            total.add(endpoint.model.model().usage());
        }
        total
    }

    fn reset_usage(&self) {
        for endpoint in &self.endpoints {
            endpoint.model.model().reset_usage();
        }
    }

    fn context_window(&self) -> usize {
        self.endpoints
            .iter()
            .map(|e| e.model.model().context_window())
            .min()
            .unwrap_or(usize::MAX)
    }

    fn latency_profile(&self) -> unidm_llm::LatencyProfile {
        self.endpoints
            .first()
            .map(|e| e.model.model().latency_profile())
            .unwrap_or_default()
    }
}

/// Deterministic confidence of a model answer, in permille.
///
/// The cascade has no log-probabilities to gate on, so confidence is a
/// pure function of the answer text: known failure markers (`unknown`,
/// "I'm not sure", `n/a`, empty) score 0 (*unparseable*); hedging
/// language, question marks and rambling length each subtract from a
/// base of 1000. Integer arithmetic only, so escalation decisions are
/// exactly reproducible.
///
/// # Examples
///
/// ```
/// use unidm::route::answer_confidence_permille;
///
/// assert_eq!(answer_confidence_permille("Central European Time"), 1000);
/// assert_eq!(answer_confidence_permille("unknown"), 0);
/// assert_eq!(answer_confidence_permille("I'm not sure."), 0);
/// assert!(answer_confidence_permille("It might be Paris?") < 500);
/// ```
pub fn answer_confidence_permille(text: &str) -> u32 {
    let trimmed = text.trim();
    if trimmed.is_empty() {
        return 0;
    }
    let lower = trimmed.to_lowercase();
    let unparseable = lower == "unknown"
        || lower == "unknown."
        || lower == "n/a"
        || lower == "n/a."
        || lower.starts_with("i'm not sure")
        || lower.starts_with("i am not sure");
    if unparseable {
        return 0;
    }
    let mut score: i64 = 1000;
    for hedge in ["probably", "perhaps", "possibly", "might", "maybe"] {
        if lower.contains(hedge) {
            score -= 300;
        }
    }
    score -= 250 * lower.matches('?').count() as i64;
    if trimmed.len() > 240 {
        score -= 200;
    }
    score.clamp(0, 1000) as u32
}

/// Escalation policy of a [`CascadeBackend`]: escalate when the cheap
/// answer's [`answer_confidence_permille`] falls below `gate_permille`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CascadePolicy {
    /// Minimum cheap-tier confidence (permille) served without
    /// escalation.
    pub gate_permille: u32,
}

impl Default for CascadePolicy {
    fn default() -> Self {
        CascadePolicy { gate_permille: 500 }
    }
}

/// A small→large model cascade implementing [`LanguageModel`].
///
/// Every prompt goes to the cheap tier first. The completion is served
/// as-is when its confidence clears [`CascadePolicy::gate_permille`];
/// otherwise the prompt escalates to the large tier and *its* completion
/// is served — so on the escalated subset the cascade's answers are
/// byte-identical to a large-model-only run. Cheap-tier errors also
/// escalate (a prompt too long for the small model's window is exactly
/// what the large model is for), except [`LlmError::EmptyPrompt`], which
/// no tier can fix and surfaces immediately.
///
/// Either tier can be a raw model, a [`crate::ResilientBackend`], or a
/// [`RoutedBackend`] fleet. [`CascadeBackend::stats`] reports the same
/// exact [`RouterStats`] shape as the router, with endpoint 0 = cheap
/// tier and endpoint 1 = large tier.
pub struct CascadeBackend<'a> {
    cheap: &'a dyn LanguageModel,
    large: &'a dyn LanguageModel,
    policy: CascadePolicy,
    cheap_cost_micro: u64,
    large_cost_micro: u64,
    name: String,
    scalars: Mutex<RouterStats>,
    tiers: [Mutex<EndpointStats>; 2],
}

impl std::fmt::Debug for CascadeBackend<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CascadeBackend")
            .field("name", &self.name)
            .field("policy", &self.policy)
            .field("stats", &self.stats())
            .finish()
    }
}

impl<'a> CascadeBackend<'a> {
    /// A cascade from `cheap` to `large` with the default confidence
    /// gate and untracked costs.
    pub fn new(cheap: &'a dyn LanguageModel, large: &'a dyn LanguageModel) -> Self {
        CascadeBackend {
            name: format!("cascade[{}->{}]", cheap.name(), large.name()),
            cheap,
            large,
            policy: CascadePolicy::default(),
            cheap_cost_micro: 0,
            large_cost_micro: 0,
            scalars: Mutex::new(RouterStats::default()),
            tiers: [
                Mutex::new(EndpointStats::default()),
                Mutex::new(EndpointStats::default()),
            ],
        }
    }

    /// Replaces the escalation policy (builder-style).
    pub fn with_policy(mut self, policy: CascadePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets per-token billing costs from the two tiers' model profiles
    /// (builder-style).
    pub fn with_costs_of(mut self, cheap: &LlmProfile, large: &LlmProfile) -> Self {
        self.cheap_cost_micro = cheap.cost_micro_per_token();
        self.large_cost_micro = large.cost_micro_per_token();
        self
    }

    /// Sets per-token billing costs directly (builder-style).
    pub fn with_costs_micro(mut self, cheap: u64, large: u64) -> Self {
        self.cheap_cost_micro = cheap;
        self.large_cost_micro = large;
        self
    }

    /// The escalation policy in force.
    pub fn policy(&self) -> CascadePolicy {
        self.policy
    }

    /// A snapshot of the cascade counters: endpoint 0 is the cheap tier,
    /// endpoint 1 the large tier.
    pub fn stats(&self) -> RouterStats {
        let mut stats = self
            .scalars
            .lock()
            .expect("cascade stats lock poisoned")
            .clone();
        stats.endpoints = self
            .tiers
            .iter()
            .map(|t| *t.lock().expect("cascade tier lock poisoned"))
            .collect();
        stats
    }

    fn lock_scalars(&self) -> MutexGuard<'_, RouterStats> {
        self.scalars.lock().expect("cascade stats lock poisoned")
    }

    fn tier(&self, index: usize) -> MutexGuard<'_, EndpointStats> {
        self.tiers[index]
            .lock()
            .expect("cascade tier lock poisoned")
    }

    fn record_tokens(&self, index: usize, completion: &Completion, cost_micro: u64) {
        let mut tier = self.tier(index);
        tier.prompt_tokens += completion.usage.prompt_tokens as u64;
        tier.completion_tokens += completion.usage.completion_tokens as u64;
        tier.billed_micro += completion.usage.total() as u64 * cost_micro;
    }
}

/// Cheap tier index in [`CascadeBackend::stats`].
const CHEAP: usize = 0;
/// Large tier index in [`CascadeBackend::stats`].
const LARGE: usize = 1;

impl LanguageModel for CascadeBackend<'_> {
    fn name(&self) -> &str {
        &self.name
    }

    fn complete(&self, prompt: &str) -> Result<Arc<Completion>, LlmError> {
        self.lock_scalars().calls += 1;
        {
            let mut tier = self.tier(CHEAP);
            tier.calls += 1;
            tier.attempts += 1;
        }
        match self.cheap.complete(prompt) {
            Ok(completion) => {
                self.record_tokens(CHEAP, &completion, self.cheap_cost_micro);
                let confidence = answer_confidence_permille(&completion.text);
                if confidence >= self.policy.gate_permille {
                    self.tier(CHEAP).successes += 1;
                    self.lock_scalars().answers += 1;
                    return Ok(completion);
                }
                let mut scalars = self.lock_scalars();
                scalars.escalations += 1;
                if confidence == 0 {
                    scalars.unparseable += 1;
                } else {
                    scalars.low_confidence += 1;
                }
            }
            Err(LlmError::EmptyPrompt) => {
                self.lock_scalars().failures += 1;
                return Err(LlmError::EmptyPrompt);
            }
            Err(_) => {
                let mut scalars = self.lock_scalars();
                scalars.escalations += 1;
                scalars.error_escalations += 1;
            }
        }
        {
            let mut tier = self.tier(LARGE);
            tier.calls += 1;
            tier.attempts += 1;
        }
        match self.large.complete(prompt) {
            Ok(completion) => {
                self.record_tokens(LARGE, &completion, self.large_cost_micro);
                self.tier(LARGE).successes += 1;
                self.lock_scalars().answers += 1;
                Ok(completion)
            }
            Err(e) => {
                self.lock_scalars().failures += 1;
                Err(e)
            }
        }
    }

    fn usage(&self) -> Usage {
        let mut total = self.cheap.usage();
        total.add(self.large.usage());
        total
    }

    fn reset_usage(&self) {
        self.cheap.reset_usage();
        self.large.reset_usage();
    }

    fn context_window(&self) -> usize {
        // A prompt too long for the cheap tier escalates, so the
        // cascade's effective window is the large tier's.
        self.large.context_window()
    }

    fn latency_profile(&self) -> unidm_llm::LatencyProfile {
        self.large.latency_profile()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unidm_llm::MockLlm;
    use unidm_world::World;

    fn model() -> MockLlm {
        MockLlm::new(&World::generate(7), LlmProfile::gpt3_175b(), 7)
    }

    fn faulty_router<'m>(llm: &'m MockLlm, seed: u64, replicas: usize) -> RoutedBackend<'m> {
        let mut router = RoutedBackend::new(seed);
        for _ in 0..replicas {
            router = router.endpoint(
                llm,
                EndpointConfig::new()
                    .with_faults(FaultPlan::moderate(seed))
                    .with_breaker(BreakerPolicy::default()),
            );
        }
        router
    }

    #[test]
    fn routing_never_changes_answers() {
        let llm = model();
        let truth = llm.complete("The capital of Denmark is __.").unwrap();
        for seed in [1, 7, 1337] {
            let router = faulty_router(&llm, seed, 3);
            let reply = router.complete("The capital of Denmark is __.").unwrap();
            assert_eq!(reply, truth, "seed {seed}");
            let stats = router.stats();
            assert_eq!(stats.calls, 1);
            assert_eq!(stats.answers, 1);
            assert_eq!(stats.failures, 0);
        }
    }

    #[test]
    fn serial_rerun_reproduces_router_stats_exactly() {
        let llm = model();
        let run = || {
            let router = faulty_router(&llm, 9, 3);
            for i in 0..40 {
                router.complete(&format!("routed prompt {i}")).unwrap();
            }
            router.stats()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "serial rerun must reproduce every counter");
        assert!(
            a.endpoints.iter().all(|e| e.calls > 0),
            "equal weights must spread calls over all endpoints: {a:?}"
        );
    }

    #[test]
    fn weights_skew_routing_proportionally() {
        let llm = model();
        let router = RoutedBackend::new(3)
            .endpoint(&llm, EndpointConfig::new().with_weight(9))
            .endpoint(&llm, EndpointConfig::new().with_weight(1));
        for i in 0..100 {
            router.complete(&format!("weighted prompt {i}")).unwrap();
        }
        let stats = router.stats();
        assert_eq!(stats.endpoints[0].calls + stats.endpoints[1].calls, 100);
        assert!(
            stats.endpoints[0].calls > 70,
            "weight 9:1 must dominate: {stats:?}"
        );
        assert!(
            stats.endpoints[1].calls > 0,
            "low weight still gets traffic: {stats:?}"
        );
    }

    #[test]
    fn replicas_draw_distinct_fault_schedules() {
        let llm = model();
        let router = faulty_router(&llm, 5, 2);
        for i in 0..60 {
            router.complete(&format!("replica prompt {i}")).unwrap();
        }
        let stats = router.stats();
        let faults = |e: &EndpointStats| e.timeouts + e.rate_limited + e.transients;
        // Two replicas share plan and seed; endpoint-aware slot keying
        // must still desynchronize their schedules.
        assert_ne!(
            (
                stats.endpoints[0].attempts,
                faults(&stats.endpoints[0]),
                stats.endpoints[0].timeouts
            ),
            (
                stats.endpoints[1].attempts,
                faults(&stats.endpoints[1]),
                stats.endpoints[1].timeouts
            ),
            "replicas must not fault in lockstep: {stats:?}"
        );
    }

    #[test]
    fn aimd_rate_halves_on_429_and_recovers_additively() {
        let llm = model();
        let plan = FaultPlan {
            rate_limit_permille: 1000,
            timeout_permille: 0,
            transient_permille: 0,
            slow_permille: 0,
            max_consecutive_faults: 3,
            ..FaultPlan::none(11)
        };
        let aimd = AimdPolicy {
            initial_per_sec: 64,
            min_per_sec: 4,
            max_per_sec: 128,
            increase_per_sec: 1,
            burst: 4,
        };
        let router = RoutedBackend::new(11).endpoint(
            &llm,
            EndpointConfig::new().with_faults(plan).with_aimd(aimd),
        );
        router.complete("throttled prompt").unwrap();
        let stats = router.stats();
        assert_eq!(stats.endpoints[0].rate_limited, 3, "three 429s injected");
        assert_eq!(stats.endpoints[0].aimd_decreases, 3);
        assert_eq!(stats.endpoints[0].aimd_increases, 1, "the success recovers");
        // 64 → 32 → 16 → 8, then +1 on the forced success.
        assert_eq!(router.current_rate_per_sec(0), Some(9));
        assert_eq!(stats.endpoints[0].rate_tokens, stats.endpoints[0].attempts);
    }

    #[test]
    fn aimd_rate_never_leaves_its_bounds() {
        let llm = model();
        let plan = FaultPlan {
            rate_limit_permille: 1000,
            timeout_permille: 0,
            transient_permille: 0,
            slow_permille: 0,
            max_consecutive_faults: 2,
            ..FaultPlan::none(13)
        };
        let aimd = AimdPolicy {
            initial_per_sec: 8,
            min_per_sec: 4,
            max_per_sec: 10,
            increase_per_sec: 1,
            burst: 2,
        };
        let router = RoutedBackend::new(13).endpoint(
            &llm,
            EndpointConfig::new().with_faults(plan).with_aimd(aimd),
        );
        for i in 0..30 {
            router.complete(&format!("bounded prompt {i}")).unwrap();
        }
        let rate = router.current_rate_per_sec(0).unwrap();
        assert!(
            (aimd.min_per_sec..=aimd.max_per_sec).contains(&rate),
            "rate {rate} escaped [{}, {}]",
            aimd.min_per_sec,
            aimd.max_per_sec
        );
    }

    #[test]
    fn open_breaker_sheds_traffic_to_peers() {
        let llm = model();
        let dead = FaultPlan {
            timeout_permille: 1000,
            rate_limit_permille: 0,
            transient_permille: 0,
            slow_permille: 0,
            max_consecutive_faults: u32::MAX,
            ..FaultPlan::none(1)
        };
        let breaker = BreakerPolicy {
            failure_threshold: 2,
            cooldown_us: 3_600_000_000, // one virtual hour: stays open
        };
        let router = RoutedBackend::new(1)
            .endpoint(
                &llm,
                EndpointConfig::new()
                    .with_faults(dead)
                    .with_breaker(breaker),
            )
            .endpoint(&llm, EndpointConfig::new().with_breaker(breaker));
        for i in 0..50 {
            router.complete(&format!("shedding prompt {i}")).unwrap();
        }
        let stats = router.stats();
        assert_eq!(stats.failures, 0, "healthy peer absorbs everything");
        assert_eq!(stats.endpoints[0].breaker_trips, 1);
        assert!(
            stats.endpoints[0].attempts <= 2,
            "dead endpoint must lose traffic once tripped: {stats:?}"
        );
        assert!(stats.endpoints[0].breaker_open_skips > 40);
        assert!(stats.endpoints[1].successes >= 48);
    }

    #[test]
    fn all_breakers_open_backs_off_and_recovers() {
        let llm = model();
        let dead = FaultPlan {
            timeout_permille: 1000,
            rate_limit_permille: 0,
            transient_permille: 0,
            slow_permille: 0,
            max_consecutive_faults: 2,
            ..FaultPlan::none(2)
        };
        let breaker = BreakerPolicy {
            failure_threshold: 1,
            cooldown_us: 200_000,
        };
        let router = RoutedBackend::new(2).endpoint(
            &llm,
            EndpointConfig::new()
                .with_faults(dead)
                .with_breaker(breaker),
        );
        // Single endpoint, always faulty until the cap: the breaker opens,
        // the call backs off through CircuitOpen and the forced success
        // lands after the cooldown.
        router.complete("lonely prompt").unwrap();
        let stats = router.stats();
        assert!(stats.all_open >= 1, "must observe an all-open window");
        assert_eq!(stats.failures, 0);
    }

    #[test]
    fn router_stats_merge_is_commutative_and_exact() {
        let llm = model();
        let run = |seed: u64| {
            let router = faulty_router(&llm, seed, 2);
            for i in 0..15 {
                router.complete(&format!("merge probe {seed}-{i}")).unwrap();
            }
            router.stats()
        };
        let a = run(7);
        let b = run(1337);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge is commutative");
        assert_eq!(ab.calls, a.calls + b.calls);
        assert_eq!(ab.attempts(), a.attempts() + b.attempts());
        assert_eq!(ab.tokens(), a.tokens() + b.tokens());
        let mut id = a.clone();
        id.merge(&RouterStats::default());
        assert_eq!(id, a, "merging a default is the identity");
        // Padded merge: fewer endpoints fold into more.
        let mut wide = a.clone();
        let mut narrow = RouterStats::default();
        narrow.endpoints.push(b.endpoints[0]);
        wide.merge(&narrow);
        assert_eq!(wide.endpoints.len(), 2);
        assert_eq!(
            wide.endpoints[0].attempts,
            a.endpoints[0].attempts + b.endpoints[0].attempts
        );
    }

    #[test]
    fn backend_stats_projection_adds_up() {
        let llm = model();
        let router = faulty_router(&llm, 3, 3);
        for i in 0..20 {
            router.complete(&format!("projection prompt {i}")).unwrap();
        }
        let router_stats = router.stats();
        let flat = router.backend_stats();
        assert_eq!(flat.calls, router_stats.calls);
        assert_eq!(flat.attempts, router_stats.attempts());
        assert_eq!(flat.breaker_trips, router_stats.breaker_trips());
        assert_eq!(
            flat.attempt_latency.samples(),
            router_stats
                .endpoints
                .iter()
                .map(|e| e.latency.samples())
                .sum::<u64>()
        );
    }

    #[test]
    fn permanent_errors_surface_immediately() {
        // Fault-free endpoints: the first attempt reaches the inner model
        // and its permanent error must surface without any retry.
        let llm = model();
        let router = RoutedBackend::new(1)
            .endpoint(&llm, EndpointConfig::new())
            .endpoint(&llm, EndpointConfig::new());
        assert_eq!(router.complete("  "), Err(LlmError::EmptyPrompt));
        let stats = router.stats();
        assert_eq!(stats.failures, 1);
        assert_eq!(stats.retries, 0, "permanent errors are not retried");
    }

    #[test]
    fn usage_deduplicates_shared_inner_models() {
        let llm = model();
        let router = RoutedBackend::new(1)
            .endpoint(&llm, EndpointConfig::new())
            .endpoint(&llm, EndpointConfig::new());
        router.reset_usage();
        router.complete("usage probe").unwrap();
        assert_eq!(
            router.usage(),
            llm.usage(),
            "replicas over one model share one usage counter"
        );
    }

    #[test]
    fn confidence_scores_are_deterministic_and_ordered() {
        assert_eq!(answer_confidence_permille(""), 0);
        assert_eq!(answer_confidence_permille("   "), 0);
        assert_eq!(answer_confidence_permille("unknown"), 0);
        assert_eq!(answer_confidence_permille("Unknown."), 0);
        assert_eq!(answer_confidence_permille("I'm not sure."), 0);
        assert_eq!(answer_confidence_permille("n/a"), 0);
        assert_eq!(answer_confidence_permille("Copenhagen"), 1000);
        let hedged = answer_confidence_permille("It is probably Copenhagen");
        assert!(hedged < 1000 && hedged > 0);
        assert!(answer_confidence_permille("maybe Paris? or Rome?") < hedged);
    }

    #[test]
    fn cascade_serves_cheap_answers_and_escalates_weak_ones() {
        let world = World::generate(7);
        let cheap = MockLlm::new(&world, LlmProfile::gptj_6b(), 7);
        let large = MockLlm::new(&world, LlmProfile::gpt3_175b(), 7);
        let cascade = CascadeBackend::new(&cheap, &large)
            .with_costs_of(&LlmProfile::gptj_6b(), &LlmProfile::gpt3_175b());
        let prompts: Vec<String> = (0..30)
            .map(|i| format!("The capital of country number {i} is __."))
            .collect();
        let mut expected_escalations = 0u64;
        for prompt in &prompts {
            let cheap_answer = cheap.complete(prompt).unwrap();
            let escalates =
                answer_confidence_permille(&cheap_answer.text) < cascade.policy().gate_permille;
            if escalates {
                expected_escalations += 1;
            }
            let served = cascade.complete(prompt).unwrap();
            if escalates {
                assert_eq!(
                    served,
                    large.complete(prompt).unwrap(),
                    "escalated prompts serve the large tier's answer"
                );
            } else {
                assert_eq!(served.text, cheap_answer.text);
            }
        }
        let stats = cascade.stats();
        assert_eq!(stats.calls, 30);
        assert_eq!(stats.escalations, expected_escalations);
        assert_eq!(
            stats.escalations,
            stats.unparseable + stats.low_confidence + stats.error_escalations
        );
        assert_eq!(stats.endpoints[CHEAP].calls, 30);
        assert_eq!(stats.endpoints[LARGE].calls, stats.escalations);
    }

    #[test]
    fn cascade_empty_prompt_surfaces_without_escalating() {
        let world = World::generate(7);
        let cheap = MockLlm::new(&world, LlmProfile::llama2_7b(), 7);
        let large = MockLlm::new(&world, LlmProfile::gpt3_175b(), 7);
        let cascade = CascadeBackend::new(&cheap, &large);
        assert_eq!(cascade.complete("  "), Err(LlmError::EmptyPrompt));
        let stats = cascade.stats();
        assert_eq!(stats.failures, 1);
        assert_eq!(stats.escalations, 0);
        assert_eq!(stats.endpoints[LARGE].calls, 0);
    }

    #[test]
    fn route_plan_wires_through_backend_config() {
        let llm = model();
        let config = BackendConfig::resilient(7)
            .with_faults(FaultPlan::moderate(7))
            .with_route(RoutePlan::replicas(3).with_aimd(AimdPolicy::per_sec(100)));
        let attached = config.wrap(&llm);
        let truth = llm.complete("The capital of Denmark is __.").unwrap();
        assert_eq!(
            attached
                .model()
                .complete("The capital of Denmark is __.")
                .unwrap(),
            truth
        );
        let router_stats = attached.router_stats().expect("routed stats");
        assert_eq!(router_stats.endpoints.len(), 3);
        assert_eq!(router_stats.calls, 1);
        let flat = attached.stats().expect("flat stats");
        assert_eq!(flat.calls, 1);
        assert!(attached.fault_stats().is_some());
        assert!(attached.elapsed_us() > 0);
    }
}
