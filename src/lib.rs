//! Umbrella crate for the UniDM reproduction workspace.
//!
//! Re-exports every member crate under a stable name so the repository-level
//! examples and integration tests can use one import root. Downstream users
//! should depend on the individual crates ([`unidm`], [`unidm_llm`], ...)
//! directly.

pub use unidm;
pub use unidm_baselines as baselines;
pub use unidm_eval as eval;
pub use unidm_llm as llm;
pub use unidm_synthdata as synthdata;
pub use unidm_tablestore as tablestore;
pub use unidm_text as text;
pub use unidm_world as world;
